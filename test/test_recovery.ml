(* Tests for Mmdb_recovery: log records/devices, stable memory, the
   three-set lock manager, WAL commit strategies, the memory-resident
   store with checkpoint/crash/recover, the banking workload, the
   throughput simulation (paper's 100 -> 1000 tps ladder), and end-to-end
   crash consistency. *)

module R = Mmdb_recovery
module S = Mmdb_storage
module U = Mmdb_util

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let feq ?(eps = 1e-9) name a b =
  checkb
    (Printf.sprintf "%s: %.6g ~= %.6g" name a b)
    true
    (Float.abs (a -. b) <= eps)

let within name pct a b =
  checkb
    (Printf.sprintf "%s: %.4g within %.0f%% of %.4g" name a (pct *. 100.) b)
    true
    (Float.abs (a -. b) <= pct *. Float.abs b)

(* ------------------------------------------------------------------ *)
(* Log records                                                         *)
(* ------------------------------------------------------------------ *)

let banking_records ?(txn = 1) ?(lsn0 = 1) () =
  R.Log_record.Begin { txn; lsn = lsn0 }
  :: List.init 6 (fun i ->
         R.Log_record.Update
           {
             txn;
             lsn = lsn0 + 1 + i;
             slot = i;
             old_value = 0;
             new_value = i;
           })
  @ [ R.Log_record.Commit { txn; lsn = lsn0 + 7 } ]

let txn_bytes ~compressed records =
  List.fold_left
    (fun acc r -> acc + R.Log_record.size_bytes ~compressed r)
    0 records

let test_record_sizes () =
  let records = banking_records () in
  checki "typical txn = 400 bytes" 400 (txn_bytes ~compressed:false records);
  checki "compressed = 220 bytes" 220 (txn_bytes ~compressed:true records);
  checki "lsn accessor" 1 (R.Log_record.lsn (List.hd records));
  Alcotest.(check (option int))
    "txn accessor" (Some 1)
    (R.Log_record.txn (List.hd records));
  Alcotest.(check (option int))
    "markers have no txn" None
    (R.Log_record.txn (R.Log_record.Ckpt_begin { lsn = 9 }));
  checkb "update detection" true
    (R.Log_record.is_update (List.nth records 1));
  checkb "commit not update" false
    (R.Log_record.is_update (List.nth records 7))

(* ------------------------------------------------------------------ *)
(* Log device                                                          *)
(* ------------------------------------------------------------------ *)

let test_log_device_queuing () =
  let clock = S.Sim_clock.create () in
  let d = R.Log_device.create ~clock () in
  let c1 = R.Log_device.write_page d ~at:0.0 [] ~bytes:4096 in
  feq "first completes at 10ms" 10e-3 c1;
  let c2 = R.Log_device.write_page d ~at:0.0 [] ~bytes:4096 in
  feq "second queues" 20e-3 c2;
  let c3 = R.Log_device.write_page d ~at:0.5 [] ~bytes:100 in
  feq "idle gap honoured" 0.51 c3;
  feq "busy_until" 0.51 (R.Log_device.busy_until d);
  checki "pages" 3 (R.Log_device.pages_written d);
  checki "bytes" (4096 + 4096 + 100) (R.Log_device.bytes_written d)

let test_log_device_durability_cutoff () =
  let clock = S.Sim_clock.create () in
  let d = R.Log_device.create ~clock () in
  let r1 = R.Log_record.Begin { txn = 1; lsn = 1 } in
  let r2 = R.Log_record.Begin { txn = 2; lsn = 2 } in
  ignore (R.Log_device.write_page d ~at:0.0 [ r1 ] ~bytes:20);
  ignore (R.Log_device.write_page d ~at:0.0 [ r2 ] ~bytes:20);
  checki "nothing durable at 5ms" 0
    (List.length (R.Log_device.durable_records d ~at:5e-3));
  checki "one durable at 15ms" 1
    (List.length (R.Log_device.durable_records d ~at:15e-3));
  checki "both durable at 25ms" 2
    (List.length (R.Log_device.durable_records d ~at:25e-3));
  checki "all records" 2 (List.length (R.Log_device.all_records d))

let test_log_device_oversize_rejected () =
  let clock = S.Sim_clock.create () in
  let d = R.Log_device.create ~page_bytes:100 ~clock () in
  checkb "oversize raises" true
    (try
       ignore (R.Log_device.write_page d ~at:0.0 [] ~bytes:101);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Stable memory                                                       *)
(* ------------------------------------------------------------------ *)

let test_stable_memory_capacity () =
  let sm = R.Stable_memory.create ~capacity_bytes:100 in
  checki "capacity" 100 (R.Stable_memory.capacity sm);
  checkb "fits" true (R.Stable_memory.put_records sm [] ~bytes:60);
  checki "used" 60 (R.Stable_memory.used sm);
  checkb "overflow rejected" false (R.Stable_memory.put_records sm [] ~bytes:50);
  checkb "exact fit" true (R.Stable_memory.put_records sm [] ~bytes:40);
  checki "full" 0 (R.Stable_memory.available sm)

let test_stable_memory_fifo_drain () =
  let sm = R.Stable_memory.create ~capacity_bytes:1000 in
  let r i = R.Log_record.Begin { txn = i; lsn = i } in
  ignore (R.Stable_memory.put_records sm [ r 1; r 2 ] ~bytes:40);
  ignore (R.Stable_memory.put_records sm [ r 3 ] ~bytes:20);
  ignore (R.Stable_memory.put_records sm [ r 4 ] ~bytes:20);
  let records, bytes = R.Stable_memory.drain sm ~max_bytes:60 in
  checki "drained bytes" 60 bytes;
  Alcotest.(check (list int))
    "oldest first, in order" [ 1; 2; 3 ]
    (List.map R.Log_record.lsn records);
  checki "remaining" 20 (R.Stable_memory.used sm);
  Alcotest.(check (list int))
    "contents" [ 4 ]
    (List.map R.Log_record.lsn (R.Stable_memory.records sm))

let test_stable_memory_peek_drop () =
  let sm = R.Stable_memory.create ~capacity_bytes:1000 in
  let r i = R.Log_record.Begin { txn = i; lsn = i } in
  ignore (R.Stable_memory.put_records sm [ r 1 ] ~bytes:20);
  ignore (R.Stable_memory.put_records sm [ r 2 ] ~bytes:30);
  (match R.Stable_memory.peek_batch sm with
  | Some ([ x ], 20) -> checki "peek oldest" 1 (R.Log_record.lsn x)
  | _ -> Alcotest.fail "unexpected peek");
  R.Stable_memory.drop_batch sm;
  checki "used after drop" 30 (R.Stable_memory.used sm);
  R.Stable_memory.drop_batch sm;
  checkb "drop empty raises FAULT010" true
    (try
       R.Stable_memory.drop_batch sm;
       false
     with Mmdb_fault.Fault.Io_error e ->
       e.Mmdb_fault.Fault.code = "FAULT010")

let test_stable_memory_table () =
  let sm = R.Stable_memory.create ~capacity_bytes:10 in
  R.Stable_memory.table_put sm ~key:3 ~value:77;
  R.Stable_memory.table_put sm ~key:5 ~value:99;
  checkb "get" true (R.Stable_memory.table_get sm ~key:3 = Some 77);
  checkb "missing" true (R.Stable_memory.table_get sm ~key:4 = None);
  let sum =
    R.Stable_memory.table_fold sm ~init:0 ~f:(fun acc ~key:_ ~value ->
        acc + value)
  in
  checki "fold" 176 sum;
  R.Stable_memory.table_remove sm ~key:3;
  checkb "removed" true (R.Stable_memory.table_get sm ~key:3 = None);
  R.Stable_memory.table_clear sm;
  checkb "cleared" true (R.Stable_memory.table_get sm ~key:5 = None)

(* ------------------------------------------------------------------ *)
(* Lock manager                                                        *)
(* ------------------------------------------------------------------ *)

let test_lock_basic_grant () =
  let lm = R.Lock_manager.create () in
  (match R.Lock_manager.acquire lm ~txn:1 ~key:10 with
  | Some g ->
    checki "granted to 1" 1 g.R.Lock_manager.granted_txn;
    Alcotest.(check (list int)) "no deps" [] g.R.Lock_manager.dependencies
  | None -> Alcotest.fail "should grant");
  checkb "holder" true (R.Lock_manager.holder lm ~key:10 = Some 1);
  (* Second transaction must wait. *)
  checkb "2 waits" true (R.Lock_manager.acquire lm ~txn:2 ~key:10 = None);
  Alcotest.(check (list int)) "wait queue" [ 2 ]
    (R.Lock_manager.waiters lm ~key:10)

let test_lock_precommit_dependency () =
  let lm = R.Lock_manager.create () in
  ignore (R.Lock_manager.acquire lm ~txn:1 ~key:10);
  let grants = R.Lock_manager.precommit lm ~txn:1 in
  Alcotest.(check (list int)) "no waiters woken" []
    (List.map (fun g -> g.R.Lock_manager.granted_txn) grants);
  Alcotest.(check (list int)) "1 precommitted" [ 1 ]
    (R.Lock_manager.precommitted lm ~key:10);
  (* New acquirer becomes dependent on 1 ("reading uncommitted data"). *)
  (match R.Lock_manager.acquire lm ~txn:2 ~key:10 with
  | Some g ->
    Alcotest.(check (list int)) "depends on 1" [ 1 ]
      g.R.Lock_manager.dependencies
  | None -> Alcotest.fail "should grant");
  (* Chain: 2 precommits, 3 depends on both. *)
  ignore (R.Lock_manager.precommit lm ~txn:2);
  (match R.Lock_manager.acquire lm ~txn:3 ~key:10 with
  | Some g ->
    Alcotest.(check (list int))
      "depends on 2 then 1" [ 2; 1 ]
      g.R.Lock_manager.dependencies
  | None -> Alcotest.fail "should grant");
  (* Finalize 1: it leaves the precommitted set. *)
  R.Lock_manager.finalize lm ~txn:1;
  ignore (R.Lock_manager.precommit lm ~txn:3);
  Alcotest.(check (list int)) "2,3 precommitted" [ 2; 3 ]
    (List.sort compare (R.Lock_manager.precommitted lm ~key:10))

let test_lock_waiter_woken_on_precommit () =
  let lm = R.Lock_manager.create () in
  ignore (R.Lock_manager.acquire lm ~txn:1 ~key:5);
  checkb "2 waits" true (R.Lock_manager.acquire lm ~txn:2 ~key:5 = None);
  let grants = R.Lock_manager.precommit lm ~txn:1 in
  (match grants with
  | [ g ] ->
    checki "2 woken" 2 g.R.Lock_manager.granted_txn;
    Alcotest.(check (list int)) "dependent on 1" [ 1 ]
      g.R.Lock_manager.dependencies
  | _ -> Alcotest.fail "expected one grant");
  checkb "2 now holds" true (R.Lock_manager.holder lm ~key:5 = Some 2)

let test_lock_abort_releases () =
  let lm = R.Lock_manager.create () in
  ignore (R.Lock_manager.acquire lm ~txn:1 ~key:5);
  checkb "2 waits" true (R.Lock_manager.acquire lm ~txn:2 ~key:5 = None);
  let grants = R.Lock_manager.release_abort lm ~txn:1 in
  (match grants with
  | [ g ] ->
    checki "2 woken" 2 g.R.Lock_manager.granted_txn;
    Alcotest.(check (list int)) "no deps from aborter" []
      g.R.Lock_manager.dependencies
  | _ -> Alcotest.fail "expected one grant");
  (* Pre-committed transactions never abort. *)
  ignore (R.Lock_manager.precommit lm ~txn:2);
  checkb "abort after precommit rejected" true
    (try
       ignore (R.Lock_manager.release_abort lm ~txn:2);
       false
     with Invalid_argument _ -> true)

let test_lock_reacquire_held () =
  let lm = R.Lock_manager.create () in
  ignore (R.Lock_manager.acquire lm ~txn:1 ~key:5);
  (match R.Lock_manager.acquire lm ~txn:1 ~key:5 with
  | Some g -> Alcotest.(check (list int)) "no deps" [] g.R.Lock_manager.dependencies
  | None -> Alcotest.fail "re-acquire should grant");
  Alcotest.(check (list int)) "held once" [ 5 ]
    (R.Lock_manager.locks_held lm ~txn:1)

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

(* Pre-commit releases every lock for good (§5.2): the lock set never
   grows again, and a finished transaction id is dead. *)
let test_lock_acquire_after_precommit_raises () =
  let lm = R.Lock_manager.create () in
  ignore (R.Lock_manager.acquire lm ~txn:1 ~key:5);
  ignore (R.Lock_manager.precommit lm ~txn:1);
  checkb "acquire after precommit rejected" true
    (raises_invalid (fun () -> ignore (R.Lock_manager.acquire lm ~txn:1 ~key:6)));
  R.Lock_manager.finalize lm ~txn:1;
  checkb "acquire after finalize rejected" true
    (raises_invalid (fun () -> ignore (R.Lock_manager.acquire lm ~txn:1 ~key:7)))

let test_lock_acquire_after_abort_raises () =
  let lm = R.Lock_manager.create () in
  ignore (R.Lock_manager.acquire lm ~txn:1 ~key:5);
  ignore (R.Lock_manager.release_abort lm ~txn:1);
  checkb "acquire after abort rejected" true
    (raises_invalid (fun () -> ignore (R.Lock_manager.acquire lm ~txn:1 ~key:5)))

(* Property: every grant handed out when locks change hands (initial
   acquire, precommit wake, abort wake) lists dependencies that are a
   subset of the key's pre-committed set at grant time. *)
let test_lock_wake_dependency_property () =
  let rng = U.Xorshift.create 4242 in
  let lm = R.Lock_manager.create () in
  let nkeys = 6 in
  (* waiting txn -> key it queued on *)
  let waiting : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let subset ds key =
    let pc = R.Lock_manager.precommitted lm ~key in
    List.for_all (fun d -> List.mem d pc) ds
  in
  let check_grants grants =
    List.iter
      (fun (g : R.Lock_manager.grant) ->
        let w = g.R.Lock_manager.granted_txn in
        match Hashtbl.find_opt waiting w with
        | Some key ->
          Hashtbl.remove waiting w;
          checkb
            (Printf.sprintf "woken txn %d deps in precommitted(%d)" w key)
            true
            (subset g.R.Lock_manager.dependencies key)
        | None -> Alcotest.fail "grant to a transaction that was not waiting")
      grants
  in
  let live = ref [] in
  let next = ref 0 in
  for _ = 1 to 400 do
    (* Keep a few transactions in flight. *)
    if List.length !live < 4 then begin
      live := !next :: !live;
      incr next
    end;
    let l = !live in
    let txn = List.nth l (U.Xorshift.int rng (List.length l)) in
    if Hashtbl.mem waiting txn then ()
    else if
      U.Xorshift.int rng 4 = 0 && R.Lock_manager.locks_held lm ~txn <> []
    then begin
      (* Finish: mostly precommit (then finalize), sometimes abort. *)
      (* Check at grant time: finalize would already have removed the
         pre-committed transaction from the sets. *)
      if U.Xorshift.int rng 5 = 0 then
        check_grants (R.Lock_manager.release_abort lm ~txn)
      else begin
        check_grants (R.Lock_manager.precommit lm ~txn);
        R.Lock_manager.finalize lm ~txn
      end;
      live := List.filter (fun t -> t <> txn) !live
    end
    else begin
      let key = U.Xorshift.int rng nkeys in
      match R.Lock_manager.acquire lm ~txn ~key with
      | Some g ->
        checkb
          (Printf.sprintf "direct grant to %d deps in precommitted(%d)" txn key)
          true
          (subset g.R.Lock_manager.dependencies key)
      | None -> Hashtbl.replace waiting txn key
    end
  done

let test_lock_schedule_recording () =
  let clock = S.Sim_clock.create () in
  let recorder =
    R.Schedule.recorder ~now:(fun () -> S.Sim_clock.now clock)
  in
  let lm = R.Lock_manager.create ~recorder () in
  ignore (R.Lock_manager.acquire lm ~txn:1 ~key:5);
  S.Sim_clock.advance clock 1e-3;
  checkb "2 waits" true (R.Lock_manager.acquire lm ~txn:2 ~key:5 = None);
  ignore (R.Lock_manager.precommit lm ~txn:1);
  let names =
    List.map
      (fun (e : R.Schedule.event) -> R.Schedule.kind_name e.R.Schedule.kind)
      (R.Schedule.events recorder)
  in
  Alcotest.(check (list string))
    "protocol transitions recorded"
    [ "Acquire"; "Grant"; "Acquire"; "Wait"; "Precommit"; "Release"; "Wake" ]
    names;
  (* Times come from the injected clock. *)
  (match R.Schedule.events recorder with
  | a :: _ -> feq "first event at t=0" 0.0 a.R.Schedule.time
  | [] -> Alcotest.fail "no events");
  R.Schedule.clear recorder;
  checki "cleared" 0 (R.Schedule.length recorder)

(* ------------------------------------------------------------------ *)
(* WAL strategies                                                      *)
(* ------------------------------------------------------------------ *)

let wal_commit wal ~at ~txn ?(deps = []) () =
  R.Wal.commit_txn wal ~at ~txn ~deps
    (banking_records ~txn ~lsn0:(txn * 100) ())

let test_wal_conventional_serializes () =
  let clock = S.Sim_clock.create () in
  let wal = R.Wal.create ~clock R.Wal.Conventional in
  let t1 = wal_commit wal ~at:0.0 ~txn:1 () in
  let t2 = wal_commit wal ~at:0.0 ~txn:2 () in
  let t3 = wal_commit wal ~at:0.0 ~txn:3 () in
  feq "t1 at 10ms" 10e-3 (Option.get (R.Wal.ticket_completion t1));
  feq "t2 at 20ms" 20e-3 (Option.get (R.Wal.ticket_completion t2));
  feq "t3 at 30ms" 30e-3 (Option.get (R.Wal.ticket_completion t3));
  checki "3 pages" 3 (R.Wal.pages_written wal)

let test_wal_group_commit_batches () =
  let clock = S.Sim_clock.create () in
  let wal = R.Wal.create ~clock R.Wal.Group_commit in
  let tickets = List.init 12 (fun i -> wal_commit wal ~at:0.0 ~txn:i ()) in
  (* First ten 400-byte txns share the first page (4000 <= 4096). *)
  let t0 = List.nth tickets 0 and t9 = List.nth tickets 9 in
  (match (R.Wal.ticket_completion t0, R.Wal.ticket_completion t9) with
  | Some a, Some b ->
    feq "first group together" a b;
    feq "one write" 10e-3 a
  | _ -> Alcotest.fail "first group should be durable");
  (* Txn 11 still sits in the open buffer. *)
  let t11 = List.nth tickets 11 in
  checkb "tail not durable yet" true (R.Wal.ticket_completion t11 = None);
  ignore (R.Wal.flush wal ~at:0.0);
  checkb "flush resolves tail" true (R.Wal.ticket_completion t11 <> None)

let test_wal_partitioned_parallelism () =
  let clock = S.Sim_clock.create () in
  let wal = R.Wal.create ~clock (R.Wal.Partitioned { devices = 2 }) in
  (* 20 independent txns span two pages; with 2 devices both write in
     parallel, completing at 10ms. *)
  let tickets = List.init 20 (fun i -> wal_commit wal ~at:0.0 ~txn:i ()) in
  ignore (R.Wal.flush wal ~at:0.0);
  let c i = Option.get (R.Wal.ticket_completion (List.nth tickets i)) in
  feq "page 1 at 10ms" 10e-3 (c 0);
  feq "page 2 also at 10ms (parallel)" 10e-3 (c 19)

let test_wal_partitioned_dependency_ordering () =
  let clock = S.Sim_clock.create () in
  let wal = R.Wal.create ~clock (R.Wal.Partitioned { devices = 4 }) in
  (* Group 1: the anchor and nine independent fillers. *)
  let anchor = wal_commit wal ~at:0.0 ~txn:100 () in
  let free_rider = wal_commit wal ~at:0.0 ~txn:1 () in
  for i = 2 to 9 do
    ignore (wal_commit wal ~at:0.0 ~txn:i ())
  done;
  ignore (R.Wal.flush wal ~at:0.0);
  let anchor_done = Option.get (R.Wal.ticket_completion anchor) in
  feq "anchor group at 10ms" 10e-3 anchor_done;
  ignore free_rider;
  (* Group 2: one transaction dependent on the anchor, plus an
     independent control group 3 for comparison. *)
  let dep = wal_commit wal ~at:0.0 ~txn:200 ~deps:[ 100 ] () in
  ignore (R.Wal.flush wal ~at:0.0);
  let control = wal_commit wal ~at:0.0 ~txn:300 () in
  ignore (R.Wal.flush wal ~at:0.0);
  let dep_done = Option.get (R.Wal.ticket_completion dep) in
  let control_done = Option.get (R.Wal.ticket_completion control) in
  (* The dependent group is issued only after the anchor group is
     durable: 10ms + 10ms.  The independent control group, on an idle
     device, needs only its own 10ms. *)
  feq "dependent serialized" 20e-3 dep_done;
  feq "independent parallel" 10e-3 control_done;
  checkb "topological order" true (dep_done >= anchor_done +. 10e-3 -. 1e-9)

let test_wal_stable_immediate_commit () =
  let clock = S.Sim_clock.create () in
  let wal =
    R.Wal.create ~clock
      (R.Wal.Stable { devices = 1; capacity_bytes = 8192; compressed = true })
  in
  let t1 = wal_commit wal ~at:0.0 ~txn:1 () in
  feq "commits instantly" 0.0 (Option.get (R.Wal.ticket_completion t1));
  (* Crash right now: the records are durable in stable memory. *)
  checki "durable immediately" 8
    (List.length (R.Wal.durable_records wal ~at:0.0))

let test_wal_stable_backpressure () =
  let clock = S.Sim_clock.create () in
  (* Room for exactly 2 x 400-byte transactions. *)
  let wal =
    R.Wal.create ~clock
      (R.Wal.Stable { devices = 1; capacity_bytes = 800; compressed = false })
  in
  let t1 = wal_commit wal ~at:0.0 ~txn:1 () in
  let t2 = wal_commit wal ~at:0.0 ~txn:2 () in
  feq "t1 instant" 0.0 (Option.get (R.Wal.ticket_completion t1));
  feq "t2 instant" 0.0 (Option.get (R.Wal.ticket_completion t2));
  (* Third must wait for a drain page write. *)
  let t3 = wal_commit wal ~at:0.0 ~txn:3 () in
  feq "t3 waits for drain" 10e-3 (Option.get (R.Wal.ticket_completion t3))

let test_wal_stable_compression_on_disk () =
  let clock = S.Sim_clock.create () in
  let mk compressed =
    let wal =
      R.Wal.create ~clock
        (R.Wal.Stable { devices = 1; capacity_bytes = 4000; compressed })
    in
    for i = 1 to 50 do
      ignore (wal_commit wal ~at:0.0 ~txn:i ())
    done;
    ignore (R.Wal.flush wal ~at:0.0);
    R.Wal.disk_bytes_written wal
  in
  let plain = mk false and compressed = mk true in
  within "compressed/plain ~ 0.55" 0.02
    (float_of_int compressed /. float_of_int plain)
    0.55

let test_wal_durable_cutoff_group () =
  let clock = S.Sim_clock.create () in
  let wal = R.Wal.create ~clock R.Wal.Group_commit in
  for i = 1 to 10 do
    ignore (wal_commit wal ~at:0.0 ~txn:i ())
  done;
  (* Ten 400-byte txns (4000 bytes) still fit the 4096-byte buffer: the
     group has not been forced out, so a crash now loses everything. *)
  checki "whole group volatile" 0
    (List.length (R.Wal.durable_records wal ~at:1.0));
  ignore (R.Wal.flush wal ~at:0.0);
  (* Page scheduled at 0, completes at 10ms. *)
  checki "nothing durable at 5ms" 0
    (List.length (R.Wal.durable_records wal ~at:5e-3));
  checki "80 records durable at 10ms" 80
    (List.length (R.Wal.durable_records wal ~at:10e-3));
  checki "oracle sees all" 80 (List.length (R.Wal.all_records wal))

let test_wal_time_order_enforced () =
  let clock = S.Sim_clock.create () in
  let wal = R.Wal.create ~clock R.Wal.Conventional in
  ignore (wal_commit wal ~at:1.0 ~txn:1 ());
  checkb "going back raises" true
    (try
       ignore (wal_commit wal ~at:0.5 ~txn:2 ());
       false
     with Invalid_argument _ -> true)

(* Property: under every strategy, for random dependency chains, a
   dependent transaction is never durable before its dependency. *)
let qcheck_wal_dependency_order =
  QCheck.Test.make ~name:"dependents never durable before dependencies"
    ~count:40
    QCheck.(
      pair (int_range 0 3)
        (list_of_size Gen.(int_range 1 60) (int_range 0 9)))
    (fun (strat_idx, dep_offsets) ->
      let strategy =
        match strat_idx with
        | 0 -> R.Wal.Conventional
        | 1 -> R.Wal.Group_commit
        | 2 -> R.Wal.Partitioned { devices = 3 }
        | _ ->
          R.Wal.Stable { devices = 2; capacity_bytes = 4096; compressed = true }
      in
      let clock = S.Sim_clock.create () in
      let wal = R.Wal.create ~clock strategy in
      (* Txn i depends on txn (i - 1 - offset) when that exists. *)
      let tickets =
        List.mapi
          (fun i offset ->
            let deps = if i - 1 - offset >= 0 then [ i - 1 - offset ] else [] in
            (i, deps, wal_commit wal ~at:(float_of_int i *. 1e-4) ~txn:i ~deps ()))
          dep_offsets
      in
      ignore (R.Wal.flush wal ~at:1.0);
      let completion = Hashtbl.create 64 in
      List.iter
        (fun (i, _, tkt) ->
          match R.Wal.ticket_completion tkt with
          | Some c -> Hashtbl.replace completion i c
          | None -> ())
        tickets;
      List.for_all
        (fun (i, deps, _) ->
          match Hashtbl.find_opt completion i with
          | None -> true (* never durable: vacuously ordered *)
          | Some c ->
            List.for_all
              (fun d ->
                match Hashtbl.find_opt completion d with
                | Some dc -> dc <= c +. 1e-12
                | None -> false (* dependency lost but dependent durable! *))
              deps)
        tickets)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_properties () =
  let rng = U.Xorshift.create 3 in
  let txns = R.Workload.generate ~rng ~nrecords:100 ~n:50 () in
  checki "50 txns" 50 (List.length txns);
  List.iter
    (fun (t : R.Workload.txn) ->
      checki "6 updates" 6 (List.length t.R.Workload.updates);
      let sum = List.fold_left (fun a (_, d) -> a + d) 0 t.R.Workload.updates in
      checki "zero-sum" 0 sum;
      let slots = List.map fst t.R.Workload.updates in
      checki "distinct slots" 6
        (List.length (List.sort_uniq compare slots)))
    txns;
  checki "400-byte logs" 400 (R.Workload.log_bytes ~updates_per_txn:6)

let test_workload_apply () =
  let balances = Array.make 10 0 in
  let txn = { R.Workload.txn_id = 0; updates = [ (1, 5); (2, -5) ] } in
  R.Workload.apply ~balances txn;
  checki "credit" 5 balances.(1);
  checki "debit" (-5) balances.(2)

(* ------------------------------------------------------------------ *)
(* Kv_store                                                            *)
(* ------------------------------------------------------------------ *)

let fresh_kv ?(nrecords = 100) ?(records_per_page = 10) () =
  let sm = R.Stable_memory.create ~capacity_bytes:4096 in
  (sm, R.Kv_store.create ~nrecords ~records_per_page ~stable:sm ())

let test_kv_basics () =
  let _, kv = fresh_kv () in
  checki "nrecords" 100 (R.Kv_store.nrecords kv);
  checki "npages" 10 (R.Kv_store.npages kv);
  checki "initial 0" 0 (R.Kv_store.get kv 5);
  R.Kv_store.apply_update kv ~lsn:1 ~slot:5 ~value:42;
  checki "updated" 42 (R.Kv_store.get kv 5);
  checki "one dirty page" 1 (R.Kv_store.dirty_pages kv)

let test_kv_dirty_table_first_lsn () =
  let _, kv = fresh_kv () in
  R.Kv_store.apply_update kv ~lsn:7 ~slot:5 ~value:1;
  R.Kv_store.apply_update kv ~lsn:9 ~slot:6 ~value:2;
  (* slot 6 same page as 5 *)
  R.Kv_store.apply_update kv ~lsn:11 ~slot:50 ~value:3;
  checkb "start = min first-lsn" true (R.Kv_store.recovery_start_lsn kv = Some 7);
  checki "two dirty pages" 2 (R.Kv_store.dirty_pages kv)

let test_kv_checkpoint_clears () =
  let _, kv = fresh_kv () in
  R.Kv_store.apply_update kv ~lsn:1 ~slot:0 ~value:1;
  R.Kv_store.apply_update kv ~lsn:2 ~slot:99 ~value:2;
  let st = R.Kv_store.checkpoint kv in
  checki "2 pages flushed" 2 st.R.Kv_store.pages_flushed;
  feq "20ms" 20e-3 st.R.Kv_store.duration;
  checki "clean" 0 (R.Kv_store.dirty_pages kv);
  checkb "no start lsn" true (R.Kv_store.recovery_start_lsn kv = None)

let test_kv_crash_blocks_reads () =
  let _, kv = fresh_kv () in
  R.Kv_store.crash kv;
  checkb "read after crash raises" true
    (try
       ignore (R.Kv_store.get kv 0);
       false
     with Invalid_argument _ -> true)

let test_kv_recover_redo () =
  let _, kv = fresh_kv () in
  R.Kv_store.apply_update kv ~lsn:1 ~slot:3 ~value:10;
  R.Kv_store.apply_update kv ~lsn:2 ~slot:4 ~value:20;
  let log =
    [
      R.Log_record.Begin { txn = 1; lsn = 0 };
      R.Log_record.Update { txn = 1; lsn = 1; slot = 3; old_value = 0; new_value = 10 };
      R.Log_record.Update { txn = 1; lsn = 2; slot = 4; old_value = 0; new_value = 20 };
      R.Log_record.Commit { txn = 1; lsn = 3 };
    ]
  in
  R.Kv_store.crash kv;
  let st = R.Kv_store.recover kv ~log in
  checki "slot 3 redone" 10 (R.Kv_store.get kv 3);
  checki "slot 4 redone" 20 (R.Kv_store.get kv 4);
  checki "redo count" 2 st.R.Kv_store.redo_applied;
  checki "no undo" 0 st.R.Kv_store.undo_applied;
  checki "start lsn" 1 st.R.Kv_store.start_lsn

let test_kv_recover_undo_uncommitted () =
  let _, kv = fresh_kv () in
  (* Committed txn 1 writes 10; uncommitted txn 2 overwrites with 99 and a
     checkpoint propagates the dirty page; recovery must undo 99. *)
  R.Kv_store.apply_update kv ~lsn:1 ~slot:3 ~value:10;
  R.Kv_store.apply_update kv ~lsn:5 ~slot:3 ~value:99;
  ignore (R.Kv_store.checkpoint kv);
  let log =
    [
      R.Log_record.Begin { txn = 1; lsn = 0 };
      R.Log_record.Update { txn = 1; lsn = 1; slot = 3; old_value = 0; new_value = 10 };
      R.Log_record.Commit { txn = 1; lsn = 2 };
      R.Log_record.Begin { txn = 2; lsn = 4 };
      R.Log_record.Update { txn = 2; lsn = 5; slot = 3; old_value = 10; new_value = 99 };
    ]
  in
  R.Kv_store.crash kv;
  let st = R.Kv_store.recover kv ~log in
  checki "uncommitted undone" 10 (R.Kv_store.get kv 3);
  checki "one undo" 1 st.R.Kv_store.undo_applied

let test_kv_recover_uses_checkpoint_start () =
  let _, kv = fresh_kv () in
  R.Kv_store.apply_update kv ~lsn:1 ~slot:0 ~value:5;
  ignore (R.Kv_store.checkpoint kv);
  R.Kv_store.apply_update kv ~lsn:10 ~slot:1 ~value:7;
  checkb "start after checkpoint" true
    (R.Kv_store.recovery_start_lsn kv = Some 10)

(* ------------------------------------------------------------------ *)
(* Tps_sim: the Section 5.2 ladder                                     *)
(* ------------------------------------------------------------------ *)

let test_tps_conventional_100 () =
  let r = R.Tps_sim.run ~n_txns:500 R.Wal.Conventional in
  within "conventional ~100 tps" 0.05 r.R.Tps_sim.tps 100.0

let test_tps_group_commit_1000 () =
  let r = R.Tps_sim.run ~n_txns:2000 R.Wal.Group_commit in
  within "group commit ~1000 tps" 0.05 r.R.Tps_sim.tps 1000.0

let test_tps_partitioned_scales () =
  (* Low-conflict regime (large account table): dependencies between
     commit groups are rare, so devices run in parallel. *)
  let r2 =
    R.Tps_sim.run ~nrecords:200_000 ~n_txns:2000
      (R.Wal.Partitioned { devices = 2 })
  in
  within "2 devices ~2000 tps" 0.08 r2.R.Tps_sim.tps 2000.0;
  let r4 =
    R.Tps_sim.run ~nrecords:200_000 ~n_txns:4000
      (R.Wal.Partitioned { devices = 4 })
  in
  within "4 devices ~4000 tps" 0.10 r4.R.Tps_sim.tps 4000.0

let test_tps_partitioned_conflict_collapses () =
  (* High-conflict regime: nearly every commit group depends on its
     predecessor, so the paper's topological ordering serializes the
     writes and extra devices buy nothing. *)
  let r =
    R.Tps_sim.run ~nrecords:60 ~n_txns:2000
      (R.Wal.Partitioned { devices = 4 })
  in
  checkb
    (Printf.sprintf "conflict-bound tps %.0f ~ single-device 1000"
       r.R.Tps_sim.tps)
    true
    (r.R.Tps_sim.tps < 1300.0)

let test_tps_stable_compressed_1800 () =
  let r =
    R.Tps_sim.run ~n_txns:4000
      (R.Wal.Stable { devices = 1; capacity_bytes = 64 * 1024; compressed = true })
  in
  within "stable compressed ~1800 tps" 0.10 r.R.Tps_sim.tps 1800.0

let test_tps_latency_sane () =
  let r = R.Tps_sim.run ~n_txns:200 ~arrival_interval:20e-3 R.Wal.Conventional in
  (* Open loop slower than the device: every commit waits exactly one
     page write. *)
  within "latency = 10ms" 0.01 r.R.Tps_sim.latency.U.Stats.mean 10e-3

let test_paper_ladder_shape () =
  let ladder = R.Tps_sim.paper_ladder () in
  checki "5 rungs" 5 (List.length ladder);
  List.iter
    (fun (label, measured, predicted) ->
      within (label ^ " within 12% of model") 0.12 measured predicted)
    ladder

(* ------------------------------------------------------------------ *)
(* Recovery_manager: end-to-end crash consistency                      *)
(* ------------------------------------------------------------------ *)

let run_with cfg = R.Recovery_manager.run cfg

let check_consistent name outcome =
  checkb (name ^ ": consistent") true outcome.R.Recovery_manager.consistent;
  checkb (name ^ ": money conserved") true
    outcome.R.Recovery_manager.money_conserved

let test_recovery_clean_shutdown () =
  let o = run_with R.Recovery_manager.default_config in
  check_consistent "clean" o;
  checki "all committed" 2000 o.R.Recovery_manager.durably_committed

let test_recovery_crash_loses_tail () =
  let cfg =
    { R.Recovery_manager.default_config with
      R.Recovery_manager.crash_after = Some 1995 }
  in
  let o = run_with cfg in
  check_consistent "tail loss" o;
  checkb "some loss or all durable" true
    (o.R.Recovery_manager.durably_committed <= 1995);
  (* Group commit: the open partial group is lost. *)
  checkb "tail actually lost" true
    (o.R.Recovery_manager.durably_committed < 1995)

let test_recovery_all_strategies_consistent () =
  List.iter
    (fun strategy ->
      List.iter
        (fun crash_after ->
          let cfg =
            {
              R.Recovery_manager.default_config with
              R.Recovery_manager.strategy;
              crash_after;
              n_txns = 600;
              checkpoint_every = Some 150;
            }
          in
          let o = run_with cfg in
          check_consistent
            (Printf.sprintf "%s crash=%s"
               (R.Tps_sim.strategy_label strategy)
               (match crash_after with
               | Some k -> string_of_int k
               | None -> "none"))
            o)
        [ None; Some 100; Some 599 ])
    [
      R.Wal.Conventional;
      R.Wal.Group_commit;
      R.Wal.Partitioned { devices = 3 };
      R.Wal.Stable { devices = 1; capacity_bytes = 32768; compressed = true };
    ]

let test_recovery_checkpoint_bounds_redo () =
  let base =
    { R.Recovery_manager.default_config with
      R.Recovery_manager.n_txns = 1000 }
  in
  let no_ckpt =
    run_with { base with R.Recovery_manager.checkpoint_every = None }
  in
  let frequent =
    run_with { base with R.Recovery_manager.checkpoint_every = Some 100 }
  in
  check_consistent "no checkpoint" no_ckpt;
  check_consistent "frequent checkpoint" frequent;
  checkb "checkpointing reduces redo work" true
    (frequent.R.Recovery_manager.recover_stats.R.Kv_store.redo_applied
    < no_ckpt.R.Recovery_manager.recover_stats.R.Kv_store.redo_applied);
  checkb "checkpointing reduces recovery time" true
    (frequent.R.Recovery_manager.recover_stats.R.Kv_store.recovery_time
    <= no_ckpt.R.Recovery_manager.recover_stats.R.Kv_store.recovery_time)

let test_recovery_compression_shrinks_log () =
  let base =
    { R.Recovery_manager.default_config with R.Recovery_manager.n_txns = 800 }
  in
  let group =
    run_with { base with R.Recovery_manager.strategy = R.Wal.Group_commit }
  in
  let stable =
    run_with
      {
        base with
        R.Recovery_manager.strategy =
          R.Wal.Stable
            { devices = 1; capacity_bytes = 32768; compressed = true };
      }
  in
  check_consistent "group" group;
  check_consistent "stable" stable;
  within "compressed disk log ~ 0.55 of full" 0.06
    (float_of_int stable.R.Recovery_manager.log_disk_bytes
    /. float_of_int group.R.Recovery_manager.log_disk_bytes)
    0.55

let qcheck_crash_consistency =
  QCheck.Test.make ~name:"recovery is consistent at any crash point" ~count:25
    QCheck.(pair (int_range 1 400) (int_range 0 3))
    (fun (crash_after, strat_idx) ->
      let strategy =
        match strat_idx with
        | 0 -> R.Wal.Conventional
        | 1 -> R.Wal.Group_commit
        | 2 -> R.Wal.Partitioned { devices = 2 }
        | _ ->
          R.Wal.Stable { devices = 1; capacity_bytes = 16384; compressed = true }
      in
      let cfg =
        {
          R.Recovery_manager.default_config with
          R.Recovery_manager.n_txns = 400;
          checkpoint_every = Some 97;
          strategy;
          crash_after = Some crash_after;
          seed = crash_after * 31;
        }
      in
      let o = run_with cfg in
      o.R.Recovery_manager.consistent && o.R.Recovery_manager.money_conserved)

(* ------------------------------------------------------------------ *)
(* Parallel replay, adaptive logging, restart-crash resilience         *)
(* ------------------------------------------------------------------ *)

let replay_cfg ?(workers = 4) ?(logging = R.Recovery_manager.Value_logging)
    ?crash_steps () =
  {
    R.Recovery_manager.workers;
    use_domains = false;
    logging;
    crash_steps;
    record_replay = false;
    serve_stale = false;
  }

let para_cfg ?(crash_after = 170) ?(faults = []) replay =
  {
    R.Recovery_manager.default_config with
    R.Recovery_manager.nrecords = 120;
    records_per_page = 10;
    updates_per_txn = 4;
    n_txns = 200;
    checkpoint_every = Some 60;
    crash_after = Some crash_after;
    faults;
    seed = 5;
    replay;
  }

let test_command_logging_consistent_and_smaller () =
  let value = run_with (para_cfg (replay_cfg ())) in
  let command =
    run_with
      (para_cfg (replay_cfg ~logging:R.Recovery_manager.Command_logging ()))
  in
  check_consistent "value" value;
  check_consistent "command" command;
  checki "value mode logs no command txns" 0
    value.R.Recovery_manager.command_txns;
  checkb "command mode logs command txns" true
    (command.R.Recovery_manager.command_txns > 0);
  checkb "command log is smaller on disk" true
    (command.R.Recovery_manager.log_disk_bytes
    < value.R.Recovery_manager.log_disk_bytes)

let test_adaptive_mixes_record_kinds () =
  (* At 4 workers the model prices cross-partition command replay (a
     serial barrier) above parallel value replay, so adaptive logging
     demotes cross-partition transactions to value records while keeping
     single-partition ones as commands. *)
  let o =
    run_with
      (para_cfg (replay_cfg ~logging:R.Recovery_manager.Adaptive_logging ()))
  in
  check_consistent "adaptive" o;
  checkb "some txns command-logged" true
    (o.R.Recovery_manager.command_txns > 0);
  checkb "some txns value-logged" true
    (o.R.Recovery_manager.command_txns < o.R.Recovery_manager.submitted)

let test_parallel_replay_equivalence () =
  let w1 = run_with (para_cfg (replay_cfg ~workers:1 ())) in
  let w4 = run_with (para_cfg (replay_cfg ~workers:4 ())) in
  check_consistent "1 worker" w1;
  check_consistent "4 workers" w4;
  checki "same redo work"
    w1.R.Recovery_manager.recover_stats.R.Kv_store.redo_applied
    w4.R.Recovery_manager.recover_stats.R.Kv_store.redo_applied;
  checkb "replay time shrinks with workers" true
    (w4.R.Recovery_manager.recover_stats.R.Kv_store.recovery_time
    < w1.R.Recovery_manager.recover_stats.R.Kv_store.recovery_time)

let test_restart_crash_matrix () =
  (* Crash point x second crash during replay x fault spec: every cell
     must come back with full invariants after the restarted recovery. *)
  List.iter
    (fun spec ->
      let rules =
        match Mmdb_fault.Fault_plan.of_spec spec with
        | Ok r -> r
        | Error m -> Alcotest.fail m
      in
      List.iter
        (fun crash_after ->
          List.iter
            (fun steps ->
              let o =
                run_with
                  (para_cfg ~crash_after ~faults:rules
                     (replay_cfg ~logging:R.Recovery_manager.Adaptive_logging
                        ~crash_steps:steps ()))
              in
              let name =
                Printf.sprintf "%s crash@%d steps=%d" spec crash_after steps
              in
              check_consistent name o;
              checkb (name ^ ": durable") true
                o.R.Recovery_manager.durability_ok)
            [ 1; 8; 64 ])
        [ 40; 170; 200 ])
    [ "none"; "torn-tail" ]

let test_crash_at_last_writeback_step () =
  (* The nastiest restart point: the crash budget expires exactly at the
     last write-back page write, right before the dirty-page table
     clears — the restarted recovery must see fully-advanced redo/undo
     floors and still converge. *)
  let clean =
    run_with
      (para_cfg (replay_cfg ~logging:R.Recovery_manager.Adaptive_logging ()))
  in
  let st = clean.R.Recovery_manager.recover_stats in
  let total =
    st.R.Kv_store.redo_applied + st.R.Kv_store.undo_applied
    + st.R.Kv_store.pages_written_back
  in
  checkb "clean run does replay work" true (total > 0);
  let o =
    run_with
      (para_cfg
         (replay_cfg ~logging:R.Recovery_manager.Adaptive_logging
            ~crash_steps:total ()))
  in
  checki "restart happened" 2 o.R.Recovery_manager.recovery_attempts;
  check_consistent "crash at end of write-back" o;
  checkb "durable" true o.R.Recovery_manager.durability_ok

let () =
  Alcotest.run "mmdb_recovery"
    [
      ( "log_record",
        [ Alcotest.test_case "sizes" `Quick test_record_sizes ] );
      ( "log_device",
        [
          Alcotest.test_case "queuing" `Quick test_log_device_queuing;
          Alcotest.test_case "durability cutoff" `Quick
            test_log_device_durability_cutoff;
          Alcotest.test_case "oversize rejected" `Quick
            test_log_device_oversize_rejected;
        ] );
      ( "stable_memory",
        [
          Alcotest.test_case "capacity" `Quick test_stable_memory_capacity;
          Alcotest.test_case "fifo drain" `Quick test_stable_memory_fifo_drain;
          Alcotest.test_case "peek/drop" `Quick test_stable_memory_peek_drop;
          Alcotest.test_case "table" `Quick test_stable_memory_table;
        ] );
      ( "lock_manager",
        [
          Alcotest.test_case "basic grant/wait" `Quick test_lock_basic_grant;
          Alcotest.test_case "precommit dependencies" `Quick
            test_lock_precommit_dependency;
          Alcotest.test_case "waiter woken on precommit" `Quick
            test_lock_waiter_woken_on_precommit;
          Alcotest.test_case "abort releases" `Quick test_lock_abort_releases;
          Alcotest.test_case "re-acquire held" `Quick test_lock_reacquire_held;
          Alcotest.test_case "acquire after precommit raises" `Quick
            test_lock_acquire_after_precommit_raises;
          Alcotest.test_case "acquire after abort raises" `Quick
            test_lock_acquire_after_abort_raises;
          Alcotest.test_case "wake dependency property" `Quick
            test_lock_wake_dependency_property;
          Alcotest.test_case "schedule recording" `Quick
            test_lock_schedule_recording;
        ] );
      ( "wal",
        [
          Alcotest.test_case "conventional serializes" `Quick
            test_wal_conventional_serializes;
          Alcotest.test_case "group commit batches" `Quick
            test_wal_group_commit_batches;
          Alcotest.test_case "partitioned parallel" `Quick
            test_wal_partitioned_parallelism;
          Alcotest.test_case "partitioned dependency order" `Quick
            test_wal_partitioned_dependency_ordering;
          Alcotest.test_case "stable immediate commit" `Quick
            test_wal_stable_immediate_commit;
          Alcotest.test_case "stable backpressure" `Quick
            test_wal_stable_backpressure;
          Alcotest.test_case "stable compression" `Quick
            test_wal_stable_compression_on_disk;
          Alcotest.test_case "durable cutoff (group)" `Quick
            test_wal_durable_cutoff_group;
          Alcotest.test_case "time order enforced" `Quick
            test_wal_time_order_enforced;
          QCheck_alcotest.to_alcotest qcheck_wal_dependency_order;
        ] );
      ( "workload",
        [
          Alcotest.test_case "properties" `Quick test_workload_properties;
          Alcotest.test_case "apply" `Quick test_workload_apply;
        ] );
      ( "kv_store",
        [
          Alcotest.test_case "basics" `Quick test_kv_basics;
          Alcotest.test_case "dirty table first-lsn" `Quick
            test_kv_dirty_table_first_lsn;
          Alcotest.test_case "checkpoint clears" `Quick
            test_kv_checkpoint_clears;
          Alcotest.test_case "crash blocks reads" `Quick
            test_kv_crash_blocks_reads;
          Alcotest.test_case "recover redo" `Quick test_kv_recover_redo;
          Alcotest.test_case "recover undo uncommitted" `Quick
            test_kv_recover_undo_uncommitted;
          Alcotest.test_case "checkpoint advances start" `Quick
            test_kv_recover_uses_checkpoint_start;
        ] );
      ( "tps_sim",
        [
          Alcotest.test_case "conventional ~100" `Quick
            test_tps_conventional_100;
          Alcotest.test_case "group commit ~1000" `Quick
            test_tps_group_commit_1000;
          Alcotest.test_case "partitioned scales" `Quick
            test_tps_partitioned_scales;
          Alcotest.test_case "partitioned conflict collapse" `Quick
            test_tps_partitioned_conflict_collapses;
          Alcotest.test_case "stable compressed ~1800" `Quick
            test_tps_stable_compressed_1800;
          Alcotest.test_case "open-loop latency" `Quick test_tps_latency_sane;
          Alcotest.test_case "paper ladder" `Slow test_paper_ladder_shape;
        ] );
      ( "recovery_manager",
        [
          Alcotest.test_case "clean shutdown" `Quick
            test_recovery_clean_shutdown;
          Alcotest.test_case "crash loses tail" `Quick
            test_recovery_crash_loses_tail;
          Alcotest.test_case "all strategies consistent" `Slow
            test_recovery_all_strategies_consistent;
          Alcotest.test_case "checkpoint bounds redo" `Quick
            test_recovery_checkpoint_bounds_redo;
          Alcotest.test_case "compression shrinks log" `Quick
            test_recovery_compression_shrinks_log;
          QCheck_alcotest.to_alcotest qcheck_crash_consistency;
        ] );
      ( "parallel_replay",
        [
          Alcotest.test_case "command logging consistent and smaller" `Quick
            test_command_logging_consistent_and_smaller;
          Alcotest.test_case "adaptive mixes record kinds" `Quick
            test_adaptive_mixes_record_kinds;
          Alcotest.test_case "worker-count equivalence" `Quick
            test_parallel_replay_equivalence;
          Alcotest.test_case "restart-crash matrix" `Slow
            test_restart_crash_matrix;
          Alcotest.test_case "crash at last write-back step" `Quick
            test_crash_at_last_writeback_step;
        ] );
    ]
