(* Performance-hazard gate, wired to `dune build @perflint` (and the CI
   perflint step): the static Perf_lint pass over lib/ must find every
   hazard fixed or justified, and the stable-code catalogues in code
   and in DESIGN.md must agree (both directions), so the docs cannot
   silently rot.  Exits non-zero on any unjustified finding or
   catalogue drift. *)

module V = Mmdb_verify

let failures = ref 0

let part name ok =
  Format.printf "%-28s %s@." name (if ok then "ok" else "FAIL");
  if not ok then incr failures

(* ------------------------------------------------------------------ *)
(* Static perf lint over lib/                                          *)
(* ------------------------------------------------------------------ *)

let () =
  match V.Perf_lint.scan_lib () with
  | Error m ->
    Format.printf "%s@." m;
    part "perf lint" false
  | Ok (findings, parse_diags) ->
    let diags = parse_diags @ V.Perf_lint.diags_of_findings findings in
    List.iter (fun d -> Format.printf "  %a@." V.Diag.pp d) diags;
    Format.printf "  (%d finding%s inventoried)@." (List.length findings)
      (match findings with [ _ ] -> "" | _ -> "s");
    part "perf lint" (not (V.Diag.has_errors diags))

(* ------------------------------------------------------------------ *)
(* Catalogue drift: code vs DESIGN.md                                  *)
(* ------------------------------------------------------------------ *)

(* A stable code: two-plus uppercase letters then one-plus digits
   (TXN006, FAULT011, PERF101, ...). *)
let is_code s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && s.[!i] >= 'A' && s.[!i] <= 'Z' do
    incr i
  done;
  let letters = !i in
  while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
    incr i
  done;
  letters >= 2 && n > letters && !i = n

(* Codes cited in DESIGN.md's markdown catalogue tables: the first cell
   of any `| CODE | ... |` row. *)
let doc_codes design =
  String.split_on_char '\n' design
  |> List.filter_map (fun line ->
         match String.split_on_char '|' line with
         | _ :: cell :: _ :: _ ->
           let c = String.trim cell in
           if is_code c then Some c else None
         | _ -> None)

let () =
  match V.Lint_engine.find_root () with
  | None -> part "catalogue drift" false
  | Some root -> (
    match V.Lint_engine.read_file (Filename.concat root "DESIGN.md") with
    | exception Sys_error m ->
      Format.printf "  %s@." m;
      part "catalogue drift" false
    | design ->
      let in_doc = doc_codes design in
      let in_code =
        List.map fst
          (V.code_catalogue @ Mmdb_fault.Fault.code_catalogue)
      in
      let missing_in_doc =
        List.filter (fun c -> not (List.mem c in_doc)) in_code
      in
      (* The reverse direction holds for the families whose single
         source of truth is a programmatic catalogue. *)
      let tracked =
        [ "TXN"; "FAULT"; "MODEL"; "RACE"; "PERF"; "EXN"; "RES"; "OVLD" ]
      in
      let prefix_of c =
        let rec len i =
          if i < String.length c && c.[i] >= 'A' && c.[i] <= 'Z' then
            len (i + 1)
          else i
        in
        String.sub c 0 (len 0)
      in
      let missing_in_code =
        List.filter
          (fun c ->
            List.mem (prefix_of c) tracked && not (List.mem c in_code))
          in_doc
      in
      List.iter
        (fun c -> Format.printf "  %s emitted in code, absent from DESIGN.md@." c)
        missing_in_doc;
      List.iter
        (fun c -> Format.printf "  %s documented in DESIGN.md, absent from code@." c)
        missing_in_code;
      Format.printf "  (%d codes in code, %d cited in DESIGN.md)@."
        (List.length in_code) (List.length in_doc);
      part "catalogue drift" (missing_in_doc = [] && missing_in_code = []))

let () =
  Format.printf "perflint: %s@."
    (if !failures = 0 then "all clean"
     else
       Printf.sprintf "%d gate%s failed" !failures
         (if !failures = 1 then "" else "s"));
  exit (if !failures = 0 then 0 else 1)
