(* Tests for the domain-safety pass: a hand-built corpus of racy and
   race-free schedules asserting exact RACE codes out of the
   happens-before detector, fuzz determinism and injected positive
   controls, the MVCC snapshot-discipline rule, and the static
   shared-state lint over synthetic sources. *)

module R = Mmdb_recovery
module U = Mmdb_util
module D = U.Diag
module V = Mmdb_verify
module Sch = R.Schedule
module RC = V.Race_check
module DL = V.Domain_lint

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let ev ?key ?lsn ?(domain = 0) ?ver ~t ~txn kind =
  { Sch.time = t; txn; key; lsn; domain; ver; kind }

let codes diags = List.sort_uniq compare (List.map (fun d -> d.D.code) diags)
let check_codes msg expected diags =
  Alcotest.(check (list string)) msg expected (codes diags)

(* ------------------------------------------------------------------ *)
(* Hand-built schedules                                                *)
(* ------------------------------------------------------------------ *)

(* The same two cross-domain writes, with and without 2PL.  Locked: the
   release -> grant edge orders them and the shared lockset is {7}, so
   the trace is race-free.  Unlocked: the write/write pair is unordered
   (RACE001) and no lock guards key 7 (RACE003) — the race 2PL would
   have prevented. *)
let ww_locked () =
  [
    ev ~key:7 ~t:0.001 ~txn:1 ~domain:0 Sch.Acquire;
    ev ~key:7 ~t:0.001 ~txn:1 ~domain:0 (Sch.Grant { deps = [] });
    ev ~key:7 ~lsn:1 ~t:0.002 ~txn:1 ~domain:0 Sch.Write;
    ev ~key:7 ~t:0.003 ~txn:1 ~domain:0 Sch.Release;
    ev ~key:7 ~t:0.004 ~txn:2 ~domain:1 Sch.Acquire;
    ev ~key:7 ~t:0.004 ~txn:2 ~domain:1 (Sch.Grant { deps = [] });
    ev ~key:7 ~lsn:2 ~t:0.005 ~txn:2 ~domain:1 Sch.Write;
    ev ~key:7 ~t:0.006 ~txn:2 ~domain:1 Sch.Release;
  ]

let ww_unlocked () =
  [
    ev ~key:7 ~lsn:1 ~t:0.002 ~txn:1 ~domain:0 Sch.Write;
    ev ~key:7 ~lsn:2 ~t:0.005 ~txn:2 ~domain:1 Sch.Write;
  ]

let test_ww_2pl_prevents () =
  check_codes "locked ww is clean" [] (RC.audit (ww_locked ()));
  check_codes "unlocked ww races"
    [ "RACE001"; "RACE003" ]
    (RC.audit (ww_unlocked ()))

let test_rw_race () =
  let trace =
    [
      ev ~key:3 ~t:0.001 ~txn:1 ~domain:0 Sch.Read;
      ev ~key:3 ~lsn:1 ~t:0.002 ~txn:2 ~domain:1 Sch.Write;
    ]
  in
  check_codes "read/write race" [ "RACE002"; "RACE003" ] (RC.audit trace)

(* Two lock-free reads from two domains: no conflicting pair for the
   vector clocks, so only the Eraser lockset fallback fires. *)
let test_lockset_fallback_only () =
  let trace =
    [
      ev ~key:4 ~t:0.001 ~txn:1 ~domain:0 Sch.Read;
      ev ~key:4 ~t:0.002 ~txn:2 ~domain:1 Sch.Read;
    ]
  in
  check_codes "empty lockset" [ "RACE003" ] (RC.audit trace)

(* Both writers hold a common lock on key 9 the whole time (a broken
   lock manager granted it twice), so the candidate lockset is non-empty
   and RACE003 stays quiet — but the writes to key 5 are unordered, so
   the vector clocks still catch RACE001 alone. *)
let test_ww_without_lockset_noise () =
  let trace =
    [
      ev ~key:9 ~t:0.001 ~txn:1 ~domain:0 (Sch.Grant { deps = [] });
      ev ~key:9 ~t:0.001 ~txn:2 ~domain:1 (Sch.Grant { deps = [] });
      ev ~key:5 ~lsn:1 ~t:0.002 ~txn:1 ~domain:0 Sch.Write;
      ev ~key:5 ~lsn:2 ~t:0.003 ~txn:2 ~domain:1 Sch.Write;
    ]
  in
  check_codes "vector clocks alone" [ "RACE001" ] (RC.audit trace)

let test_release_without_acquire () =
  let trace = [ ev ~key:2 ~t:0.001 ~txn:1 ~domain:0 Sch.Release ] in
  check_codes "protocol break" [ "RACE004" ] (RC.audit trace)

(* Snapshot discipline.  A version installed below a snapshot while the
   snapshot's scan is in flight races (the scan straddles the install);
   the same install before the scan begins, or a higher-timestamped
   install mid-scan, is the normal MVCC regime. *)
let test_snapshot_discipline () =
  let racy =
    [
      ev ~key:1 ~t:0.001 ~txn:10 ~domain:1 ~ver:10.0 Sch.Read;
      ev ~key:1 ~lsn:1 ~t:0.002 ~txn:2 ~domain:0 ~ver:5.0 Sch.Write;
      ev ~key:2 ~t:0.003 ~txn:10 ~domain:1 ~ver:10.0 Sch.Read;
    ]
  in
  check_codes "install below active snapshot" [ "RACE005" ] (RC.audit racy);
  let clean_before =
    [
      ev ~key:1 ~lsn:1 ~t:0.001 ~txn:2 ~domain:0 ~ver:5.0 Sch.Write;
      ev ~key:1 ~t:0.002 ~txn:10 ~domain:1 ~ver:10.0 Sch.Read;
      ev ~key:2 ~t:0.003 ~txn:10 ~domain:1 ~ver:10.0 Sch.Read;
    ]
  in
  check_codes "install before snapshot" [] (RC.audit clean_before);
  let clean_above =
    [
      ev ~key:1 ~t:0.001 ~txn:10 ~domain:1 ~ver:10.0 Sch.Read;
      ev ~key:1 ~lsn:1 ~t:0.002 ~txn:2 ~domain:0 ~ver:15.0 Sch.Write;
      ev ~key:2 ~t:0.003 ~txn:10 ~domain:1 ~ver:10.0 Sch.Read;
    ]
  in
  check_codes "install above snapshot" [] (RC.audit clean_above)

(* Single-domain traces are totally ordered: the historical (unstamped)
   emitters must keep auditing clean whatever they interleave. *)
let test_single_domain_clean () =
  let trace =
    [
      ev ~key:1 ~lsn:1 ~t:0.001 ~txn:1 Sch.Write;
      ev ~key:1 ~t:0.002 ~txn:2 Sch.Read;
      ev ~key:1 ~lsn:2 ~t:0.003 ~txn:2 Sch.Write;
      ev ~key:1 ~t:0.004 ~txn:3 Sch.Release;
    ]
  in
  (* ... except a release-without-acquire, which is domain-count
     independent. *)
  check_codes "single domain" [ "RACE004" ] (RC.audit trace)

(* ------------------------------------------------------------------ *)
(* Fuzzer integration                                                  *)
(* ------------------------------------------------------------------ *)

let test_fuzz_clean_multi_domain () =
  List.iter
    (fun seed ->
      let o = V.Txn_fuzz.run ~domains:3 ~seed () in
      check_codes
        (Printf.sprintf "seed %d race-free" seed)
        [] o.V.Txn_fuzz.race_diags;
      checkb
        (Printf.sprintf "seed %d spans domains" seed)
        true
        (List.length (Sch.domains o.V.Txn_fuzz.events) >= 3))
    [ 11; 22; 33 ]

let test_fuzz_injections_detected () =
  let o =
    V.Txn_fuzz.run ~domains:3
      ~inject:[ `Ww; `Rw; `Unguarded; `Release_no_acquire; `Snapshot ]
      ~seed:11 ()
  in
  Alcotest.(check (list string))
    "expected codes"
    [ "RACE001"; "RACE002"; "RACE003"; "RACE004"; "RACE005" ]
    (List.sort_uniq compare o.V.Txn_fuzz.injected);
  let found = codes o.V.Txn_fuzz.race_diags in
  List.iter
    (fun c -> checkb (c ^ " detected") true (List.mem c found))
    o.V.Txn_fuzz.injected

let test_fuzz_seed_determinism () =
  let run () =
    let o = V.Txn_fuzz.run ~domains:4 ~inject:[ `Ww ] ~seed:77 () in
    ( List.length o.V.Txn_fuzz.events,
      o.V.Txn_fuzz.committed,
      o.V.Txn_fuzz.aborted,
      List.map (fun (d : D.t) -> (d.D.code, d.D.path)) o.V.Txn_fuzz.race_diags
    )
  in
  checkb "same seed, same findings" true (run () = run ());
  let o1 = V.Txn_fuzz.run ~domains:2 ~seed:5 ()
  and o2 = V.Txn_fuzz.run ~domains:2 ~seed:6 () in
  checkb "different seeds differ" true
    (o1.V.Txn_fuzz.events <> o2.V.Txn_fuzz.events)

let test_mvcc_trace_clean () =
  let r =
    R.Mvcc_sim.run ~seed:83 ~n_writers:3_000 ~record_schedule:true
      R.Mvcc_sim.Versioning
  in
  checkb "events recorded" true (List.length r.R.Mvcc_sim.events > 0);
  Alcotest.(check (list int))
    "writers on 0, readers on 1" [ 0; 1 ]
    (Sch.domains r.R.Mvcc_sim.events);
  checkb "snapshots consistent" true r.R.Mvcc_sim.snapshots_consistent;
  check_codes "clean MVCC trace" [] (RC.audit r.R.Mvcc_sim.events);
  (* Off by default: the unstamped path stays valid. *)
  let r0 = R.Mvcc_sim.run ~seed:83 ~n_writers:100 R.Mvcc_sim.Versioning in
  checki "no recording by default" 0 (List.length r0.R.Mvcc_sim.events)

let test_audit_race_component () =
  let results =
    V.Audit.run_all
      [ V.Audit.Race { name = "ww"; events = ww_unlocked () } ]
  in
  match results with
  | [ (name, diags) ] ->
    Alcotest.(check string) "component name" "ww" name;
    check_codes "component reports races" [ "RACE001"; "RACE003" ] diags
  | _ -> Alcotest.fail "expected one component result"

(* ------------------------------------------------------------------ *)
(* Static lint                                                         *)
(* ------------------------------------------------------------------ *)

let flagged sites =
  List.filter_map
    (fun (s : DL.site) ->
      match s.DL.status with
      | DL.Flagged c -> Some (s.DL.name, c)
      | _ -> None)
    sites

let test_lint_classification () =
  let src =
    String.concat "\n"
      [
        "let counter = ref 0";
        "";
        "(* race_check: test-only, never shared *)";
        "let justified = ref 0";
        "let guarded = Mutex.create ()";
        "let cell = Atomic.make 0";
        "let table = lazy (Array.make 4 0)";
        "let rng = Xorshift.create 42";
        "let cache : (int, int) Hashtbl.t = Hashtbl.create 8";
        "type t = { mutable x : int; y : int }";
        "let use (v : t) = ignore counter; ignore justified; ignore guarded;";
        "  ignore cell; ignore table; ignore rng; ignore cache; v.y";
      ]
  in
  match DL.scan_source ~file:"synthetic.ml" src with
  | Error d -> Alcotest.fail ("unexpected parse failure: " ^ d.D.message)
  | Ok sites ->
    Alcotest.(check (list (pair string string)))
      "flagged sites"
      [
        ("counter", "RACE101"); ("table", "RACE102"); ("rng", "RACE103");
        ("cache", "RACE101");
      ]
      (flagged sites);
    let status_of name =
      List.find_map
        (fun (s : DL.site) -> if s.DL.name = name then Some s.DL.status else None)
        sites
    in
    (match status_of "justified" with
    | Some (DL.Whitelisted why) ->
      checkb "justification text kept" true
        (why = "test-only, never shared")
    | _ -> Alcotest.fail "justified not whitelisted");
    (match status_of "guarded" with
    | Some (DL.Safe _) -> ()
    | _ -> Alcotest.fail "Mutex.create not classified safe");
    (match status_of "cell" with
    | Some (DL.Safe _) -> ()
    | _ -> Alcotest.fail "Atomic.make not classified safe");
    (match status_of "t" with
    | Some DL.Per_instance -> ()
    | _ -> Alcotest.fail "mutable record not per-instance");
    (* The error formatter covers flagged sites only. *)
    checki "one diag per flagged site" 4
      (List.length (DL.diags_of_sites sites))

let test_lint_parse_failure () =
  match DL.scan_source ~file:"broken.ml" "let = = =" with
  | Ok _ -> Alcotest.fail "expected parse failure"
  | Error d -> Alcotest.(check string) "RACE100" "RACE100" d.D.code

let test_lint_whitelist_distance () =
  (* The marker is honoured at most two lines above the binding. *)
  let near =
    "(* race_check: close enough *)\n\n\nlet x = ref 0\nlet _ = x"
  in
  match DL.scan_source ~file:"near.ml" near with
  | Error _ -> Alcotest.fail "parse failure"
  | Ok sites ->
    Alcotest.(check (list (pair string string)))
      "marker out of range flags" [ ("x", "RACE101") ] (flagged sites)

let test_lint_repo_sources_clean () =
  (* The live gate is `dune build @racecheck`; from the test runner the
     sources may not be materialised, so only assert when found. *)
  match DL.scan_lib () with
  | Error _ -> ()
  | Ok (sites, parse_diags) ->
    checkb "repo has mutable-state sites" true (List.length sites > 0);
    check_codes "repo lint clean" []
      (parse_diags @ DL.diags_of_sites sites)

let test_code_catalogue () =
  let all = List.map fst V.code_catalogue in
  List.iter
    (fun c -> checkb (c ^ " catalogued") true (List.mem c all))
    [
      "RACE001"; "RACE002"; "RACE003"; "RACE004"; "RACE005"; "RACE100";
      "RACE101"; "RACE102"; "RACE103";
    ];
  checki "codes unique" (List.length all)
    (List.length (List.sort_uniq compare all))

let () =
  Alcotest.run "racecheck"
    [
      ( "schedules",
        [
          Alcotest.test_case "ww race 2PL prevents (RACE001)" `Quick
            test_ww_2pl_prevents;
          Alcotest.test_case "rw race (RACE002)" `Quick test_rw_race;
          Alcotest.test_case "lockset fallback (RACE003)" `Quick
            test_lockset_fallback_only;
          Alcotest.test_case "clocks without lockset noise" `Quick
            test_ww_without_lockset_noise;
          Alcotest.test_case "release w/o acquire (RACE004)" `Quick
            test_release_without_acquire;
          Alcotest.test_case "snapshot discipline (RACE005)" `Quick
            test_snapshot_discipline;
          Alcotest.test_case "single domain clean" `Quick
            test_single_domain_clean;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean multi-domain seeds" `Quick
            test_fuzz_clean_multi_domain;
          Alcotest.test_case "injections all detected" `Quick
            test_fuzz_injections_detected;
          Alcotest.test_case "seed determinism" `Quick
            test_fuzz_seed_determinism;
          Alcotest.test_case "MVCC trace clean" `Quick test_mvcc_trace_clean;
          Alcotest.test_case "audit component" `Quick
            test_audit_race_component;
        ] );
      ( "lint",
        [
          Alcotest.test_case "classification" `Quick test_lint_classification;
          Alcotest.test_case "parse failure (RACE100)" `Quick
            test_lint_parse_failure;
          Alcotest.test_case "whitelist distance" `Quick
            test_lint_whitelist_distance;
          Alcotest.test_case "repo sources clean" `Quick
            test_lint_repo_sources_clean;
          Alcotest.test_case "code catalogue" `Quick test_code_catalogue;
        ] );
    ]
