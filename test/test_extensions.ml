(* Tests for the extensions beyond the paper's headline results: the §5.2
   log-fragment merge, transaction aborts, the §6 future-work items
   (virtual-memory hash join, versioning/MVCC, extra buffer policies),
   B+-tree bulk loading, and hash-based set operations. *)

module S = Mmdb_storage
module U = Mmdb_util
module I = Mmdb_index
module E = Mmdb_exec
module R = Mmdb_recovery
module M = Mmdb

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Log_merge                                                           *)
(* ------------------------------------------------------------------ *)

let rec_ i = R.Log_record.Begin { txn = i; lsn = i }
let lsns rs = List.map R.Log_record.lsn rs

let test_log_merge_interleaves_by_timestamp () =
  let frag_a = [ (0.010, [ rec_ 1; rec_ 2 ]); (0.030, [ rec_ 5 ]) ] in
  let frag_b = [ (0.020, [ rec_ 3; rec_ 4 ]) ] in
  Alcotest.(check (list int))
    "forward order" [ 1; 2; 3; 4; 5 ]
    (lsns (R.Log_merge.merge [ frag_a; frag_b ]));
  Alcotest.(check (list int))
    "backward order" [ 5; 4; 3; 2; 1 ]
    (lsns (R.Log_merge.backward [ frag_a; frag_b ]))

let test_log_merge_tie_break_by_lsn () =
  let frag_a = [ (0.010, [ rec_ 3 ]) ] in
  let frag_b = [ (0.010, [ rec_ 1 ]) ] in
  Alcotest.(check (list int))
    "equal timestamps ordered by min lsn" [ 1; 3 ]
    (lsns (R.Log_merge.merge [ frag_a; frag_b ]))

let test_log_merge_empty () =
  checki "no fragments" 0 (List.length (R.Log_merge.merge []));
  checki "empty fragments" 0 (List.length (R.Log_merge.merge [ []; [] ]))

let test_log_merge_tie_break_fragment_order () =
  (* Equal timestamps and no LSN evidence (one page holds no records):
     fragment position decides, so the order is a pure function of the
     input and two runs of recovery see the same merged log. *)
  let frag_a = [ (0.010, []) ] in
  let frag_b = [ (0.010, [ rec_ 7 ]) ] in
  Alcotest.(check (list int))
    "a-then-b layout" [ 7 ]
    (lsns (R.Log_merge.merge [ frag_a; frag_b ]));
  Alcotest.(check (list int))
    "b-then-a layout" [ 7 ]
    (lsns (R.Log_merge.merge [ frag_b; frag_a ]));
  (* Fully tied non-empty pages: lower fragment index drains first. *)
  let tied_a = [ (0.010, [ rec_ 4 ]) ] in
  let tied_b = [ (0.010, [ rec_ 4 ]) ] in
  Alcotest.(check (list int))
    "tied pages keep fragment order" [ 4; 4 ]
    (lsns (R.Log_merge.merge [ tied_a; tied_b ]))

(* Property: the roll-backward order is exactly the reverse of the
   forward merge, including under timestamp ties and empty pages. *)
let qcheck_log_merge_backward_is_reverse =
  QCheck.Test.make ~name:"backward is reverse of merge" ~count:80
    QCheck.(
      list_of_size
        Gen.(int_range 0 4)
        (list_of_size
           Gen.(int_range 0 6)
           (pair (int_range 0 3) (int_range 0 2))))
    (fun device_pages ->
      let lsn = ref 0 in
      let fragments =
        List.map
          (List.mapi (fun i (size, ts_bucket) ->
               let records =
                 List.init size (fun _ ->
                     incr lsn;
                     rec_ !lsn)
               in
               (* Coarse timestamps manufacture cross-device ties. *)
               (float_of_int (i + ts_bucket) *. 0.01, records)))
          device_pages
      in
      R.Log_merge.backward fragments = List.rev (R.Log_merge.merge fragments))

let test_wal_partitioned_merge_preserves_conflict_order () =
  (* Dependent transactions' records must appear after their dependency's
     in the merged durable log, whatever the device layout. *)
  let clock = S.Sim_clock.create () in
  let wal = R.Wal.create ~clock (R.Wal.Partitioned { devices = 3 }) in
  let commit ~txn ~deps =
    ignore
      (R.Wal.commit_txn wal ~at:0.0 ~txn ~deps
         [
           R.Log_record.Begin { txn; lsn = txn * 2 };
           R.Log_record.Commit { txn; lsn = (txn * 2) + 1 };
         ]);
    ignore (R.Wal.flush wal ~at:0.0)
  in
  commit ~txn:1 ~deps:[];
  commit ~txn:2 ~deps:[ 1 ];
  commit ~txn:3 ~deps:[ 2 ];
  let merged = R.Wal.durable_records wal ~at:10.0 in
  let pos txn =
    let rec go i = function
      | [] -> -1
      | r :: rest ->
        if R.Log_record.txn r = Some txn then i else go (i + 1) rest
    in
    go 0 merged
  in
  checkb "1 before 2" true (pos 1 < pos 2);
  checkb "2 before 3" true (pos 2 < pos 3)

(* Property: for fragments whose page timestamps respect LSN order within
   each device, the merge yields every record exactly once, and records on
   the same device stay in order. *)
let qcheck_log_merge_complete_and_stable =
  QCheck.Test.make ~name:"log merge is complete and per-device stable"
    ~count:80
    QCheck.(
      list_of_size
        Gen.(int_range 0 5)
        (list_of_size Gen.(int_range 0 8) (int_range 1 5)))
    (fun device_page_sizes ->
      let lsn = ref 0 in
      let fragments =
        List.map
          (fun pages ->
            List.mapi
              (fun i size ->
                let records =
                  List.init size (fun _ ->
                      incr lsn;
                      rec_ !lsn)
                in
                (float_of_int (i + 1) *. 0.01 +. float_of_int !lsn, records))
              pages)
          device_page_sizes
      in
      let merged = R.Log_merge.merge fragments in
      let all = List.concat_map (fun f -> List.concat_map snd f) fragments in
      (* Completeness: same multiset of LSNs. *)
      List.sort compare (lsns merged) = List.sort compare (lsns all)
      && (* Per-device order: each fragment's records appear in their
            original relative order. *)
      List.for_all
        (fun fragment ->
          let device_lsns = List.concat_map (fun (_, rs) -> lsns rs) fragment in
          let merged_positions =
            List.filter (fun l -> List.mem l device_lsns) (lsns merged)
          in
          merged_positions = device_lsns)
        fragments)

(* ------------------------------------------------------------------ *)
(* Txn_db aborts                                                       *)
(* ------------------------------------------------------------------ *)

let test_abort_rolls_back_memory () =
  let db = M.Txn_db.create ~strategy:R.Wal.Conventional ~nrecords:10 () in
  ignore (M.Txn_db.transact db [ (0, 100); (1, -100) ]);
  let _txn = M.Txn_db.transact_abort db [ (0, 999); (2, -999) ] in
  checki "slot 0 restored" 100 (M.Txn_db.balance db 0);
  checki "slot 2 restored" 0 (M.Txn_db.balance db 2)

let test_abort_releases_locks () =
  let db = M.Txn_db.create ~nrecords:10 () in
  ignore (M.Txn_db.transact_abort db [ (3, 1) ]);
  (* A later transaction on the same slot must not deadlock or pick up a
     dependency on the aborted transaction. *)
  let o = M.Txn_db.transact db [ (3, 5) ] in
  checkb "committed" true (o.M.Txn_db.txn_id >= 0);
  M.Txn_db.flush db;
  checki "value stands" 5 (M.Txn_db.balance db 3)

let test_abort_survives_recovery () =
  let db = M.Txn_db.create ~strategy:R.Wal.Group_commit ~nrecords:10 () in
  ignore (M.Txn_db.transact db [ (0, 10); (1, -10) ]);
  ignore (M.Txn_db.transact_abort db [ (0, 77); (1, -77) ]);
  ignore (M.Txn_db.transact db [ (0, 5); (1, -5) ]);
  M.Txn_db.flush db;
  M.Txn_db.crash db;
  ignore (M.Txn_db.recover db);
  checki "aborted effects absent" 15 (M.Txn_db.balance db 0);
  checki "partner consistent" (-15) (M.Txn_db.balance db 1)

let test_abort_interleaved_crash_consistency () =
  (* Aborts sprinkled through committed work; crash with an unflushed
     tail; recovery must land on the committed prefix only. *)
  let db = M.Txn_db.create ~strategy:R.Wal.Group_commit ~nrecords:20 () in
  for i = 1 to 40 do
    if i mod 5 = 0 then
      ignore (M.Txn_db.transact_abort db [ (i mod 20, 1000) ])
    else
      ignore (M.Txn_db.transact db [ (i mod 20, 2); ((i + 1) mod 20, -2) ]);
    M.Txn_db.advance db 1e-3
  done;
  M.Txn_db.crash db;
  ignore (M.Txn_db.recover db);
  let sum = ref 0 in
  for s = 0 to 19 do
    sum := !sum + M.Txn_db.balance db s;
    checkb "no 1000-unit aborted residue" true
      (abs (M.Txn_db.balance db s) < 1000)
  done;
  checki "zero-sum" 0 !sum

(* ------------------------------------------------------------------ *)
(* Vm_hash (§6: virtual memory)                                        *)
(* ------------------------------------------------------------------ *)

let rs_schema name =
  S.Schema.create ~key:"k"
    [ S.Schema.column "k" S.Schema.Int; S.Schema.column name S.Schema.Int ]

let build_pair ?(page_size = 128) n range seed =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size in
  let rng = U.Xorshift.create seed in
  let mk name =
    let schema = rs_schema name in
    S.Relation.of_tuples ~disk ~name ~schema
      (List.init n (fun i ->
           S.Tuple.encode schema
             [ S.Tuple.VInt (U.Xorshift.int rng range); S.Tuple.VInt i ]))
  in
  (env, mk "v", mk "w")

let test_vm_hash_correct () =
  let _, r, s = build_pair 400 80 3 in
  let expected = E.Nested_loop.join_uncharged r s (fun _ _ -> ()) in
  let got = E.Vm_hash.join ~mem_pages:4 ~fudge:1.2 r s (fun _ _ -> ()) in
  checki "same matches as oracle" expected got

let test_vm_hash_no_faults_when_fits () =
  let env, r, s = build_pair 200 50 5 in
  let before = env.S.Env.counters.S.Counters.rand_reads in
  ignore (E.Vm_hash.join ~mem_pages:4096 ~fudge:1.2 r s (fun _ _ -> ()));
  checki "no faults with ample memory" before
    env.S.Env.counters.S.Counters.rand_reads

let test_vm_hash_thrashes_under_pressure () =
  let env, r, s = build_pair 2000 500 7 in
  let before = env.S.Env.counters.S.Counters.rand_reads in
  ignore (E.Vm_hash.join ~mem_pages:3 ~fudge:1.2 r s (fun _ _ -> ()));
  let faults = env.S.Env.counters.S.Counters.rand_reads - before in
  checkb (Printf.sprintf "faults under pressure (%d)" faults) true
    (faults > 1000)

let test_vm_hash_loses_to_hybrid () =
  (* The §6 question answered: explicit partitioning beats VM paging once
     R outgrows memory. *)
  let measure f =
    let env, r, s = build_pair 3000 800 11 in
    let t0 = S.Env.elapsed env in
    ignore (f r s);
    S.Env.elapsed env -. t0
  in
  let vm =
    measure (fun r s -> E.Vm_hash.join ~mem_pages:4 ~fudge:1.2 r s (fun _ _ -> ()))
  in
  let hybrid =
    measure (fun r s ->
        E.Hybrid_hash.join ~mem_pages:4 ~fudge:1.2 r s (fun _ _ -> ()))
  in
  checkb
    (Printf.sprintf "hybrid %.2fs beats VM %.2fs" hybrid vm)
    true (hybrid < vm)

(* ------------------------------------------------------------------ *)
(* Version store & MVCC (§6: versioning)                               *)
(* ------------------------------------------------------------------ *)

let test_version_store_snapshot_reads () =
  let v = R.Version_store.create ~nrecords:4 () in
  R.Version_store.write v ~ts:1.0 ~slot:0 ~value:10;
  R.Version_store.write v ~ts:2.0 ~slot:0 ~value:20;
  R.Version_store.write v ~ts:3.0 ~slot:0 ~value:30;
  checki "at 0.5 sees initial" 0 (R.Version_store.read v ~ts:0.5 ~slot:0);
  checki "at 1.5" 10 (R.Version_store.read v ~ts:1.5 ~slot:0);
  checki "at 2.0 inclusive" 20 (R.Version_store.read v ~ts:2.0 ~slot:0);
  checki "latest" 30 (R.Version_store.read_latest v ~slot:0);
  checki "other slot untouched" 0 (R.Version_store.read v ~ts:9.0 ~slot:1)

let test_version_store_write_order_enforced () =
  let v = R.Version_store.create ~nrecords:2 () in
  R.Version_store.write v ~ts:5.0 ~slot:0 ~value:1;
  checkb "stale write rejected" true
    (try
       R.Version_store.write v ~ts:5.0 ~slot:0 ~value:2;
       false
     with Invalid_argument _ -> true)

let test_version_store_gc () =
  let v = R.Version_store.create ~nrecords:2 () in
  for i = 1 to 10 do
    R.Version_store.write v ~ts:(float_of_int i) ~slot:0 ~value:i
  done;
  let before = R.Version_store.version_count v in
  let reclaimed = R.Version_store.gc v ~oldest_active_ts:7.5 in
  checkb "reclaimed some" true (reclaimed > 0);
  checki "count updated" (before - reclaimed) (R.Version_store.version_count v);
  (* Reads at or after the horizon still work. *)
  checki "read at horizon" 7 (R.Version_store.read v ~ts:7.5 ~slot:0);
  checki "read latest" 10 (R.Version_store.read_latest v ~slot:0)

let qcheck_version_store_matches_history =
  QCheck.Test.make ~name:"version store equals replayed history" ~count:100
    QCheck.(list (pair (int_range 0 4) (int_range 1 100)))
    (fun writes ->
      let v = R.Version_store.create ~nrecords:5 () in
      let history = ref [] in
      List.iteri
        (fun i (slot, value) ->
          let ts = float_of_int (i + 1) in
          R.Version_store.write v ~ts ~slot ~value;
          history := (ts, slot, value) :: !history)
        writes;
      (* Any snapshot equals a left-fold of the history prefix. *)
      let n = List.length writes in
      List.for_all
        (fun k ->
          let ts = float_of_int k +. 0.5 in
          let expect = Array.make 5 0 in
          List.iter
            (fun (wts, slot, value) ->
              if wts <= ts then expect.(slot) <- value)
            (List.rev !history);
          Array.to_list expect
          = List.init 5 (fun slot -> R.Version_store.read v ~ts ~slot))
        [ 0; n / 2; n ])

let test_mvcc_versioning_beats_locking () =
  let locking = R.Mvcc_sim.run ~n_writers:8000 R.Mvcc_sim.Locking in
  let versioning = R.Mvcc_sim.run ~n_writers:8000 R.Mvcc_sim.Versioning in
  checkb "both consistent" true
    (locking.R.Mvcc_sim.snapshots_consistent
    && versioning.R.Mvcc_sim.snapshots_consistent);
  checkb
    (Printf.sprintf "versioning tps %.0f > locking tps %.0f"
       versioning.R.Mvcc_sim.writer_tps locking.R.Mvcc_sim.writer_tps)
    true
    (versioning.R.Mvcc_sim.writer_tps > locking.R.Mvcc_sim.writer_tps);
  checkb
    (Printf.sprintf "versioning p99 %.3f < locking p99 %.3f"
       versioning.R.Mvcc_sim.writer_p99_latency
       locking.R.Mvcc_sim.writer_p99_latency)
    true
    (versioning.R.Mvcc_sim.writer_p99_latency
    < locking.R.Mvcc_sim.writer_p99_latency);
  checkb "versioning pays space" true (versioning.R.Mvcc_sim.versions_peak > 0);
  checki "locking stores no versions" 0 locking.R.Mvcc_sim.versions_peak;
  checkb "readers ran" true (locking.R.Mvcc_sim.reader_count > 2)

(* ------------------------------------------------------------------ *)
(* Buffer policies: FIFO & LRU-2                                       *)
(* ------------------------------------------------------------------ *)

let pool_env capacity policy npages =
  let env = S.Env.create () in
  let d = S.Disk.create ~env ~page_size:64 in
  let pids = Array.init npages (fun _ -> S.Disk.alloc d) in
  (env, pids, S.Buffer_pool.create ~disk:d ~capacity policy)

let test_fifo_evicts_oldest_arrival () =
  let _, pids, pool = pool_env 2 S.Buffer_pool.Fifo 3 in
  ignore (S.Buffer_pool.get pool pids.(0));
  ignore (S.Buffer_pool.get pool pids.(1));
  (* Re-touch 0: FIFO ignores recency. *)
  ignore (S.Buffer_pool.get pool pids.(0));
  ignore (S.Buffer_pool.get pool pids.(2));
  checkb "0 evicted despite recent touch" false
    (S.Buffer_pool.is_resident pool pids.(0));
  checkb "1 survives" true (S.Buffer_pool.is_resident pool pids.(1))

let test_lru2_prefers_twice_touched () =
  let _, pids, pool = pool_env 2 S.Buffer_pool.Lru_2 3 in
  ignore (S.Buffer_pool.get pool pids.(0));
  ignore (S.Buffer_pool.get pool pids.(0));
  (* page 0 touched twice *)
  ignore (S.Buffer_pool.get pool pids.(1));
  (* page 1 touched once: it is the LRU-2 victim even though page 0 is
     older by last use. *)
  ignore (S.Buffer_pool.get pool pids.(2));
  checkb "once-touched 1 evicted" false
    (S.Buffer_pool.is_resident pool pids.(1));
  checkb "twice-touched 0 kept" true (S.Buffer_pool.is_resident pool pids.(0))

let test_new_policies_bounded () =
  List.iter
    (fun policy ->
      let _, pids, pool = pool_env 3 policy 10 in
      for _ = 1 to 4 do
        Array.iter (fun pid -> ignore (S.Buffer_pool.get pool pid)) pids
      done;
      checkb "bounded" true (S.Buffer_pool.resident pool <= 3))
    [ S.Buffer_pool.Fifo; S.Buffer_pool.Lru_2 ]

(* ------------------------------------------------------------------ *)
(* Btree bulk load                                                     *)
(* ------------------------------------------------------------------ *)

let bl_schema () = rs_schema "v"
let mk_bl k = S.Tuple.encode (bl_schema ()) [ S.Tuple.VInt k; S.Tuple.VInt k ]

let test_bulk_load_basic () =
  let env = S.Env.create () in
  let tuples = List.init 1000 (fun i -> mk_bl (i * 2)) in
  let t = I.Btree.bulk_load ~env ~schema:(bl_schema ()) ~page_size:128 tuples in
  checki "length" 1000 (I.Btree.length t);
  checkb "invariants" true (I.Btree.check_invariants t);
  (* Every key present, absent keys miss. *)
  for i = 0 to 999 do
    checkb "hit" true
      (I.Btree.search t (S.Tuple.encode_int_key (bl_schema ()) (i * 2)) <> None)
  done;
  checkb "miss" true
    (I.Btree.search t (S.Tuple.encode_int_key (bl_schema ()) 1) = None);
  (* Scans work across the chained leaves. *)
  let got = I.Btree.scan_from t (S.Tuple.encode_int_key (bl_schema ()) 100) 3 in
  Alcotest.(check (list int))
    "scan" [ 100; 102; 104 ]
    (List.map (fun tup -> S.Tuple.get_int (bl_schema ()) tup 0) got)

let test_bulk_load_empty_and_tiny () =
  let env = S.Env.create () in
  let t = I.Btree.bulk_load ~env ~schema:(bl_schema ()) ~page_size:128 [] in
  checki "empty" 0 (I.Btree.length t);
  checkb "invariants" true (I.Btree.check_invariants t);
  let t1 = I.Btree.bulk_load ~env ~schema:(bl_schema ()) ~page_size:128 [ mk_bl 5 ] in
  checki "singleton" 1 (I.Btree.length t1);
  checkb "findable" true
    (I.Btree.search t1 (S.Tuple.encode_int_key (bl_schema ()) 5) <> None)

let test_bulk_load_occupancy () =
  let env = S.Env.create () in
  let tuples = List.init 3000 mk_bl in
  let full = I.Btree.bulk_load ~env ~schema:(bl_schema ()) ~page_size:128 tuples in
  let yao =
    I.Btree.bulk_load ~env ~schema:(bl_schema ()) ~page_size:128
      ~occupancy:0.69 tuples
  in
  checkb "full ~100% occupancy" true (I.Btree.avg_leaf_occupancy full > 0.95);
  let o = I.Btree.avg_leaf_occupancy yao in
  checkb (Printf.sprintf "yao occupancy %.2f ~ 0.69" o) true
    (o > 0.62 && o < 0.76);
  checkb "fewer pages when full" true
    (I.Btree.node_count full < I.Btree.node_count yao);
  checkb "both valid" true
    (I.Btree.check_invariants full && I.Btree.check_invariants yao)

let test_bulk_load_rejects_unsorted () =
  let env = S.Env.create () in
  checkb "unsorted rejected" true
    (try
       ignore
         (I.Btree.bulk_load ~env ~schema:(bl_schema ()) ~page_size:128
            [ mk_bl 2; mk_bl 1 ]);
       false
     with Invalid_argument _ -> true);
  checkb "duplicates rejected" true
    (try
       ignore
         (I.Btree.bulk_load ~env ~schema:(bl_schema ()) ~page_size:128
            [ mk_bl 1; mk_bl 1 ]);
       false
     with Invalid_argument _ -> true)

let test_bulk_load_then_mutate () =
  let env = S.Env.create () in
  let tuples = List.init 500 (fun i -> mk_bl (i * 3)) in
  let t = I.Btree.bulk_load ~env ~schema:(bl_schema ()) ~page_size:128 tuples in
  (* Inserts and deletes on a bulk-loaded tree keep it valid. *)
  for i = 0 to 200 do
    I.Btree.insert t (mk_bl ((i * 3) + 1))
  done;
  for i = 0 to 100 do
    ignore (I.Btree.delete t (S.Tuple.encode_int_key (bl_schema ()) (i * 3)))
  done;
  checkb "invariants after churn" true (I.Btree.check_invariants t);
  checki "cardinality" (500 + 201 - 101) (I.Btree.length t)

let qcheck_bulk_load_equals_incremental =
  QCheck.Test.make ~name:"bulk load equals incremental build" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 300) (int_range 0 10_000))
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      let env = S.Env.create () in
      let tuples = List.map mk_bl keys in
      let bulk =
        I.Btree.bulk_load ~env ~schema:(bl_schema ()) ~page_size:128 tuples
      in
      let incr = I.Btree.create ~env ~schema:(bl_schema ()) ~page_size:128 () in
      List.iter (I.Btree.insert incr) tuples;
      let dump t =
        let acc = ref [] in
        I.Btree.iter_in_order t (fun tup ->
            acc := S.Tuple.get_int (bl_schema ()) tup 0 :: !acc);
        List.rev !acc
      in
      dump bulk = keys && dump incr = keys
      && I.Btree.check_invariants bulk)

(* ------------------------------------------------------------------ *)
(* Set operations                                                      *)
(* ------------------------------------------------------------------ *)

let so_schema = rs_schema "v"

let load_set disk name pairs =
  S.Relation.of_tuples ~disk ~name ~schema:so_schema
    (List.map
       (fun (k, v) ->
         S.Tuple.encode so_schema [ S.Tuple.VInt k; S.Tuple.VInt v ])
       pairs)

let dump_set rel =
  let acc = ref [] in
  S.Relation.iter_tuples_nocharge rel (fun t ->
      acc := (S.Tuple.get_int so_schema t 0, S.Tuple.get_int so_schema t 1) :: !acc);
  List.sort compare !acc

let set_env () =
  let env = S.Env.create () in
  (env, S.Disk.create ~env ~page_size:128)

let test_set_ops_fixed () =
  let _, disk = set_env () in
  let l = load_set disk "L" [ (1, 1); (2, 2); (2, 2); (3, 3) ] in
  let r = load_set disk "R" [ (2, 2); (4, 4) ] in
  Alcotest.(check (list (pair int int)))
    "union"
    [ (1, 1); (2, 2); (3, 3); (4, 4) ]
    (dump_set (E.Set_ops.union ~mem_pages:8 ~fudge:1.2 l r));
  Alcotest.(check (list (pair int int)))
    "intersection" [ (2, 2) ]
    (dump_set (E.Set_ops.intersection ~mem_pages:8 ~fudge:1.2 l r));
  Alcotest.(check (list (pair int int)))
    "difference"
    [ (1, 1); (3, 3) ]
    (dump_set (E.Set_ops.difference ~mem_pages:8 ~fudge:1.2 l r))

let test_set_ops_width_mismatch () =
  let _, disk = set_env () in
  let l = load_set disk "L" [ (1, 1) ] in
  let wide =
    S.Schema.create ~key:"k"
      [ S.Schema.column "k" S.Schema.Int; S.Schema.column ~width:24 "s" S.Schema.Fixed_string ]
  in
  let r = S.Relation.of_tuples ~disk ~name:"R" ~schema:wide [] in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Set_ops: tuple widths differ") (fun () ->
      ignore (E.Set_ops.union ~mem_pages:8 ~fudge:1.2 l r))

let qcheck_set_ops_match_lists =
  QCheck.Test.make ~name:"set ops agree with list model (any memory)" ~count:60
    QCheck.(
      triple
        (list_of_size Gen.(int_range 0 150) (int_range 0 40))
        (list_of_size Gen.(int_range 0 150) (int_range 0 40))
        (int_range 2 64))
    (fun (lk, rk, mem_pages) ->
      let _, disk = set_env () in
      let pairs ks = List.map (fun k -> (k, k * 7)) ks in
      let l = load_set disk "L" (pairs lk) in
      let r = load_set disk "R" (pairs rk) in
      let model_l = List.sort_uniq compare (pairs lk) in
      let model_r = List.sort_uniq compare (pairs rk) in
      let union_m = List.sort_uniq compare (model_l @ model_r) in
      let inter_m = List.filter (fun x -> List.mem x model_r) model_l in
      let diff_m = List.filter (fun x -> not (List.mem x model_r)) model_l in
      dump_set (E.Set_ops.union ~mem_pages ~fudge:1.2 l r) = union_m
      && dump_set (E.Set_ops.intersection ~mem_pages ~fudge:1.2 l r) = inter_m
      && dump_set (E.Set_ops.difference ~mem_pages ~fudge:1.2 l r) = diff_m)

let () =
  Alcotest.run "mmdb_extensions"
    [
      ( "log_merge",
        [
          Alcotest.test_case "interleaves by timestamp" `Quick
            test_log_merge_interleaves_by_timestamp;
          Alcotest.test_case "tie-break by lsn" `Quick
            test_log_merge_tie_break_by_lsn;
          Alcotest.test_case "empty" `Quick test_log_merge_empty;
          Alcotest.test_case "tie-break by fragment order" `Quick
            test_log_merge_tie_break_fragment_order;
          Alcotest.test_case "conflict order preserved" `Quick
            test_wal_partitioned_merge_preserves_conflict_order;
          QCheck_alcotest.to_alcotest qcheck_log_merge_complete_and_stable;
          QCheck_alcotest.to_alcotest qcheck_log_merge_backward_is_reverse;
        ] );
      ( "aborts",
        [
          Alcotest.test_case "rolls back memory" `Quick
            test_abort_rolls_back_memory;
          Alcotest.test_case "releases locks" `Quick test_abort_releases_locks;
          Alcotest.test_case "survives recovery" `Quick
            test_abort_survives_recovery;
          Alcotest.test_case "interleaved crash consistency" `Quick
            test_abort_interleaved_crash_consistency;
        ] );
      ( "vm_hash",
        [
          Alcotest.test_case "correct" `Quick test_vm_hash_correct;
          Alcotest.test_case "no faults when fits" `Quick
            test_vm_hash_no_faults_when_fits;
          Alcotest.test_case "thrashes under pressure" `Quick
            test_vm_hash_thrashes_under_pressure;
          Alcotest.test_case "loses to hybrid" `Quick test_vm_hash_loses_to_hybrid;
        ] );
      ( "versioning",
        [
          Alcotest.test_case "snapshot reads" `Quick
            test_version_store_snapshot_reads;
          Alcotest.test_case "write order" `Quick
            test_version_store_write_order_enforced;
          Alcotest.test_case "gc" `Quick test_version_store_gc;
          QCheck_alcotest.to_alcotest qcheck_version_store_matches_history;
          Alcotest.test_case "mvcc beats locking" `Slow
            test_mvcc_versioning_beats_locking;
        ] );
      ( "buffer_policies",
        [
          Alcotest.test_case "fifo" `Quick test_fifo_evicts_oldest_arrival;
          Alcotest.test_case "lru-2" `Quick test_lru2_prefers_twice_touched;
          Alcotest.test_case "bounded" `Quick test_new_policies_bounded;
        ] );
      ( "bulk_load",
        [
          Alcotest.test_case "basic" `Quick test_bulk_load_basic;
          Alcotest.test_case "empty & tiny" `Quick test_bulk_load_empty_and_tiny;
          Alcotest.test_case "occupancy" `Quick test_bulk_load_occupancy;
          Alcotest.test_case "rejects unsorted" `Quick
            test_bulk_load_rejects_unsorted;
          Alcotest.test_case "mutate after" `Quick test_bulk_load_then_mutate;
          QCheck_alcotest.to_alcotest qcheck_bulk_load_equals_incremental;
        ] );
      ( "set_ops",
        [
          Alcotest.test_case "fixed" `Quick test_set_ops_fixed;
          Alcotest.test_case "width mismatch" `Quick test_set_ops_width_mismatch;
          QCheck_alcotest.to_alcotest qcheck_set_ops_match_lists;
        ] );
    ]
