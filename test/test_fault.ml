(* Fault-plane tests: CRC-32 checksums, the log wire encoding and its
   corruption detection, torn-tail truncation at every cut point, typed
   storage faults (transient retry, pool rot + scrub), stable-memory
   battery droop, and the crash-point torture sweep's determinism and
   no-silent-corruption property. *)

module U = Mmdb_util
module S = Mmdb_storage
module R = Mmdb_recovery
module L = R.Log_record
module V = Mmdb_verify
module Fault = Mmdb_fault.Fault
module Plan = Mmdb_fault.Fault_plan

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Checksums                                                           *)
(* ------------------------------------------------------------------ *)

let test_crc32_vector () =
  (* The CRC-32/IEEE check value. *)
  checki "123456789" 0xCBF43926 (U.Checksum.crc32_string "123456789");
  checki "empty" 0 (U.Checksum.crc32_string "")

let test_page_checksum () =
  let p = Bytes.make 256 '\000' in
  Bytes.set p 17 'x';
  let sum = S.Page.checksum p in
  checki "deterministic" sum (S.Page.checksum p);
  Bytes.set p 200 '\001';
  checkb "sensitive to any byte" true (sum <> S.Page.checksum p)

(* ------------------------------------------------------------------ *)
(* Log wire encoding                                                   *)
(* ------------------------------------------------------------------ *)

let sample_records =
  [
    L.Begin { txn = 3; lsn = 1 };
    L.Update { txn = 3; lsn = 2; slot = 7; old_value = -41; new_value = 59 };
    L.Update
      { txn = 3; lsn = 3; slot = 1023; old_value = 1_000_000;
        new_value = -1_000_000 };
    L.Commit { txn = 3; lsn = 4 };
    L.Begin { txn = 4; lsn = 5 };
    L.Update { txn = 4; lsn = 6; slot = 0; old_value = 0; new_value = 1 };
    L.Abort { txn = 4; lsn = 7 };
    L.Ckpt_begin { lsn = 8 };
    L.Ckpt_end { lsn = 9 };
    L.Command { txn = 5; lsn = 10; ops = [] };
    L.Command { txn = 5; lsn = 11; ops = [ (7, -41) ] };
    L.Command
      { txn = 5; lsn = 12;
        ops = [ (0, 1); (1023, -1_000_000); (512, 999_999) ] };
  ]

let test_encode_roundtrip () =
  List.iter
    (fun r ->
      let b = L.encode ~compressed:false r in
      checki "declared size" (Bytes.length b)
        (L.size_bytes ~compressed:false r);
      match L.decode b ~pos:0 with
      | Ok (r', n) ->
        checki "consumed" (Bytes.length b) n;
        checkb "roundtrip" true (r = r')
      | Error m -> Alcotest.failf "decode failed: %s" m)
    sample_records

let test_encode_roundtrip_compressed () =
  (* Compressed updates carry new values only (Section 5.4): the decoded
     record has old_value = 0; everything else round-trips. *)
  List.iter
    (fun r ->
      let b = L.encode ~compressed:true r in
      match L.decode b ~pos:0 with
      | Ok (r', _) ->
        let expect =
          match r with
          | L.Update { txn; lsn; slot; old_value = _; new_value } ->
            L.Update { txn; lsn; slot; old_value = 0; new_value }
          | other -> other
        in
        checkb "roundtrip (new values only)" true (expect = r')
      | Error m -> Alcotest.failf "decode failed: %s" m)
    sample_records

let test_decode_detects_any_bit_flip () =
  (* CRC-32 detects every single-bit error, so no flipped copy may decode
     to a (different) valid record. *)
  let r = List.nth sample_records 1 in
  let b = L.encode ~compressed:false r in
  for byte = 0 to Bytes.length b - 1 do
    for bit = 0 to 7 do
      let c = Bytes.copy b in
      Bytes.set c byte
        (Char.chr (Char.code (Bytes.get c byte) lxor (1 lsl bit)));
      match L.decode c ~pos:0 with
      | Ok (r', _) ->
        if r' <> r then
          Alcotest.failf "byte %d bit %d decoded to a different record" byte
            bit
        else Alcotest.failf "byte %d bit %d: flip not detected" byte bit
      | Error _ -> ()
    done
  done

let test_decode_run_every_cut () =
  (* Torn tail: whatever byte the tear lands on, decode_run recovers
     exactly the checksum-valid prefix of whole records. *)
  let bufs = List.map (L.encode ~compressed:false) sample_records in
  let total = List.fold_left (fun a b -> a + Bytes.length b) 0 bufs in
  let buf = Bytes.create total in
  let boundaries = ref [ 0 ] in
  let pos = ref 0 in
  List.iter
    (fun b ->
      Bytes.blit b 0 buf !pos (Bytes.length b);
      pos := !pos + Bytes.length b;
      boundaries := !pos :: !boundaries)
    bufs;
  for cut = 0 to total do
    let decoded, err = L.decode_run buf ~pos:0 ~len:cut in
    let expect =
      let n = ref 0 and acc = ref 0 and stopped = ref false in
      List.iter
        (fun b ->
          if (not !stopped) && !acc + Bytes.length b <= cut then begin
            incr n;
            acc := !acc + Bytes.length b
          end
          else stopped := true)
        bufs;
      !n
    in
    checki (Printf.sprintf "cut %d: record prefix" cut) expect
      (List.length decoded);
    checkb
      (Printf.sprintf "cut %d: whole records iff boundary" cut)
      (List.mem cut !boundaries)
      (err = None);
    checkb
      (Printf.sprintf "cut %d: prefix content" cut)
      true
      (decoded
      = List.filteri (fun i _ -> i < expect) sample_records)
  done

(* ------------------------------------------------------------------ *)
(* Typed storage faults                                                *)
(* ------------------------------------------------------------------ *)

let test_disk_transient_retry () =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:128 in
  let plan =
    Plan.create ~seed:5
      [
        {
          Plan.site = Fault.Disk_read;
          kind = Fault.Io_transient { failures = 2 };
          trigger = Plan.On_op 1;
        };
      ]
  in
  S.Disk.arm disk plan;
  let pid = S.Disk.alloc disk in
  let b = Bytes.make 128 'a' in
  S.Disk.write disk ~mode:S.Disk.Seq pid b;
  let got = S.Disk.read disk ~mode:S.Disk.Rand pid in
  checkb "data intact after transient errors" true (Bytes.equal b got);
  let t = Plan.tally plan in
  checkb "retries counted" true (t.Fault.retried >= 2);
  checki "nothing unrecoverable" 0 t.Fault.unrecoverable

let test_disk_bitflip_read_repaired () =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:128 in
  let plan =
    Plan.create ~seed:9
      [
        {
          Plan.site = Fault.Disk_read;
          kind = Fault.Bit_flip_read;
          trigger = Plan.On_op 1;
        };
      ]
  in
  S.Disk.arm disk plan;
  let pid = S.Disk.alloc disk in
  let b = Bytes.make 128 'z' in
  S.Disk.write disk ~mode:S.Disk.Seq pid b;
  let got = S.Disk.read disk ~mode:S.Disk.Rand pid in
  checkb "reread returned clean data" true (Bytes.equal b got);
  let t = Plan.tally plan in
  checki "injected" 1 t.Fault.injected;
  checki "detected" 1 t.Fault.detected;
  checki "repaired" 1 t.Fault.repaired

let test_pool_rot_scrubbed () =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:128 in
  let pid = S.Disk.alloc disk in
  let b = Bytes.make 128 'q' in
  S.Disk.write disk ~mode:S.Disk.Seq pid b;
  let plan =
    Plan.create ~seed:3
      [
        {
          Plan.site = Fault.Pool_frame;
          kind = Fault.Bit_flip_rest;
          trigger = Plan.On_op 1;
        };
      ]
  in
  S.Disk.arm disk plan;
  let pool = S.Buffer_pool.create ~disk ~capacity:4 S.Buffer_pool.Lru in
  ignore (S.Buffer_pool.get pool pid);
  (* The hit path draws the Pool_frame site: the resident clean frame
     rots in memory. *)
  let rotted = S.Buffer_pool.get pool pid in
  checkb "frame rotted in memory" true (not (Bytes.equal b rotted));
  checki "scrub repaired it" 1 (S.Buffer_pool.scrub pool);
  checkb "clean after scrub" true
    (Bytes.equal b (S.Buffer_pool.get pool pid))

let test_stable_droop_drops_newest () =
  let sm = R.Stable_memory.create ~capacity_bytes:4096 in
  let batch i =
    [ L.Begin { txn = i; lsn = (2 * i) + 1 };
      L.Commit { txn = i; lsn = (2 * i) + 2 } ]
  in
  List.iter
    (fun i -> assert (R.Stable_memory.put_records sm (batch i) ~bytes:40))
    [ 1; 2; 3 ];
  let kept, lost = R.Stable_memory.records_dropping_newest sm ~batches:1 in
  checki "two batches kept" 4 (List.length kept);
  checki "newest batch records lost" 2 lost;
  checkb "oldest survive in order" true (kept = batch 1 @ batch 2)

let test_code_catalogue () =
  let codes = List.map fst Fault.code_catalogue in
  checki "twelve codes" 12 (List.length codes);
  checki "unique" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun c -> checkb c true (List.mem c codes))
    [ "FAULT001"; "FAULT007"; "FAULT011"; "FAULT012" ]

(* ------------------------------------------------------------------ *)
(* End-to-end torn-tail recovery                                       *)
(* ------------------------------------------------------------------ *)

let torn_cfg =
  {
    R.Recovery_manager.default_config with
    R.Recovery_manager.nrecords = 64;
    records_per_page = 8;
    updates_per_txn = 4;
    n_txns = 48;
    checkpoint_every = Some 16;
    strategy = R.Wal.Group_commit;
    faults =
      (match Plan.of_spec "torn-tail" with Ok r -> r | Error m -> failwith m);
    seed = 7;
  }

(* The first page-write window of a probe run: crash instants inside it
   tear that page. *)
let first_span () =
  let probe = R.Recovery_manager.run torn_cfg in
  match probe.R.Recovery_manager.page_spans with
  | (s, c) :: _ -> (s, c)
  | [] -> Alcotest.fail "probe wrote no log pages"

let test_torn_tail_mid_write () =
  let s, c = first_span () in
  let o =
    R.Recovery_manager.run
      { torn_cfg with R.Recovery_manager.crash_at = Some ((s +. c) /. 2.0) }
  in
  checkb "torn write injected" true
    (List.mem_assoc "FAULT001" o.R.Recovery_manager.fault_events);
  checkb "consistent" true o.R.Recovery_manager.consistent;
  checkb "money conserved" true o.R.Recovery_manager.money_conserved;
  checkb "no acknowledged commit lost" true o.R.Recovery_manager.durability_ok;
  checkb "durable log audits clean" true
    (V.Log_check.ok ~complete:false o.R.Recovery_manager.durable_log)

let test_torn_tail_every_point_recoverable () =
  (* Sweep the tear across the whole first write window: every cut must
     truncate at a record boundary and recover cleanly. *)
  let s, c = first_span () in
  for i = 0 to 19 do
    let at = s +. ((c -. s) *. (float_of_int i +. 0.5) /. 20.0) in
    let o =
      R.Recovery_manager.run
        { torn_cfg with R.Recovery_manager.crash_at = Some at }
    in
    checkb
      (Printf.sprintf "point %d consistent" i)
      true o.R.Recovery_manager.consistent;
    checkb
      (Printf.sprintf "point %d money" i)
      true o.R.Recovery_manager.money_conserved;
    checkb
      (Printf.sprintf "point %d durability" i)
      true o.R.Recovery_manager.durability_ok;
    checkb
      (Printf.sprintf "point %d audit" i)
      true
      (V.Log_check.ok ~complete:false o.R.Recovery_manager.durable_log)
  done

(* ------------------------------------------------------------------ *)
(* Torture sweep                                                       *)
(* ------------------------------------------------------------------ *)

let small_sweep seed =
  V.Torture.run ~seed ~txns:24 ~specs:[ "none"; "torn-tail,bitflip" ]
    ~max_points_per_combo:8 ()

let test_torture_seeds_clean () =
  List.iter
    (fun seed ->
      let r = small_sweep seed in
      checkb (Printf.sprintf "seed %d no silent corruption" seed) true
        (V.Torture.ok r);
      checkb
        (Printf.sprintf "seed %d covers all strategies" seed)
        true
        (List.length r.V.Torture.combos = 2 * 4))
    [ 7; 11; 13 ]

let test_torture_deterministic () =
  List.iter
    (fun seed ->
      let a = small_sweep seed and b = small_sweep seed in
      checkb (Printf.sprintf "seed %d combos repeat" seed) true
        (a.V.Torture.combos = b.V.Torture.combos);
      checkb (Printf.sprintf "seed %d tally repeats" seed) true
        (a.V.Torture.tally = b.V.Torture.tally);
      checkb (Printf.sprintf "seed %d events repeat" seed) true
        (a.V.Torture.events = b.V.Torture.events))
    [ 7; 11; 13 ]

let test_torture_flags_unrecoverable_loss () =
  (* Battery droop on the stable strategy loses acknowledged commits:
     the sweep must classify those runs as flagged (reported), never
     silent. *)
  let r =
    V.Torture.run ~seed:7 ~txns:24 ~specs:[ "battery-droop" ]
      ~strategies:
        [ R.Wal.Stable { devices = 2; capacity_bytes = 4096; compressed = true } ]
      ~max_points_per_combo:12 ()
  in
  checkb "no silent corruption" true (V.Torture.ok r);
  checkb "droop was exercised and flagged" true (r.V.Torture.flagged <> []);
  checkb "FAULT007 reported" true
    (List.mem_assoc "FAULT007" r.V.Torture.events)

let () =
  Alcotest.run "mmdb fault"
    [
      ( "checksum",
        [
          Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
          Alcotest.test_case "page checksum" `Quick test_page_checksum;
        ] );
      ( "log-wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_encode_roundtrip;
          Alcotest.test_case "roundtrip compressed" `Quick
            test_encode_roundtrip_compressed;
          Alcotest.test_case "any bit flip detected" `Quick
            test_decode_detects_any_bit_flip;
          Alcotest.test_case "every torn cut recovers a valid prefix" `Quick
            test_decode_run_every_cut;
        ] );
      ( "storage-faults",
        [
          Alcotest.test_case "transient I/O retried" `Quick
            test_disk_transient_retry;
          Alcotest.test_case "read bit flip repaired by reread" `Quick
            test_disk_bitflip_read_repaired;
          Alcotest.test_case "pool rot found by scrub" `Quick
            test_pool_rot_scrubbed;
          Alcotest.test_case "battery droop drops newest batches" `Quick
            test_stable_droop_drops_newest;
          Alcotest.test_case "code catalogue" `Quick test_code_catalogue;
        ] );
      ( "torn-tail",
        [
          Alcotest.test_case "mid-page-write crash recovers" `Quick
            test_torn_tail_mid_write;
          Alcotest.test_case "every tear point recovers" `Quick
            test_torn_tail_every_point_recoverable;
        ] );
      ( "torture",
        [
          Alcotest.test_case "seeds 7/11/13 clean" `Quick
            test_torture_seeds_clean;
          Alcotest.test_case "deterministic" `Quick test_torture_deterministic;
          Alcotest.test_case "unrecoverable loss is flagged" `Quick
            test_torture_flags_unrecoverable_loss;
        ] );
    ]
