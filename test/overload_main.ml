(* Overload-resilience gate, wired to `dune build @overload` (and the CI
   overload step): two seeded open-loop spike runs through the full
   service layer — one calm-weather spike, one spike plus transient
   fault storm with the circuit breaker armed — plus a randomized
   state-machine check of the breaker against a reference model and a
   spike-mode fuzz audit.  Exits non-zero if goodput vanishes, money is
   not conserved, a shed leaves a dirty audit trail, or the breaker
   diverges from its model. *)

module U = Mmdb_util
module V = Mmdb_verify
module O = Mmdb_overload.Overload
module OS = Mmdb.Overload_sim

let failures = ref 0

let part name ok =
  Format.printf "%-32s %s@." name (if ok then "ok" else "FAIL");
  if not ok then incr failures

let describe (o : OS.outcome) =
  Format.printf
    "  %s: %d arrivals, %d goodput (%.0f tps), %d shed, %d timed out, p99 \
     %.1f ms@."
    o.OS.label o.OS.arrivals o.OS.goodput_txns o.OS.goodput_tps o.OS.shed
    o.OS.timed_out
    (o.OS.p99_latency *. 1e3)

let spike_run ~seed ~storm =
  let o =
    OS.run
      {
        OS.default_config with
        OS.seed;
        OS.duration = 2.0;
        OS.storm = storm;
        OS.record_schedule = true;
      }
  in
  describe o;
  let name =
    Printf.sprintf "spike%s (seed %d)" (if storm then "+storm" else "") seed
  in
  part name
    (o.OS.goodput_txns > 0 && o.OS.money_conserved && o.OS.audit_errors = 0
    && o.OS.shed + o.OS.timed_out > 0);
  if storm then
    (* The storm must have exercised the breaker, and every
       breaker-open shed must be typed. *)
    part "breaker exercised by storm"
      (o.OS.breaker_trips >= 1 && List.mem_assoc "OVLD007" o.OS.shed_codes)

(* Reference model for the breaker (mirrors the documented semantics:
   trip after [threshold] consecutive closed-state failures, cool down
   on the clock, admit one half-open probe, close on probe success,
   reopen on probe failure). *)
type model = {
  mutable st : O.Breaker.state;
  mutable consec : int;
  mutable opened : float;
  mutable probe : bool;
  mutable trips : int;
  mutable probes : int;
  mutable reopens : int;
}

let breaker_model_check ~seed ~ops =
  let threshold = 3 and cooldown = 10e-3 in
  let b = O.Breaker.create ~threshold ~cooldown ~name:"model" () in
  let m =
    {
      st = O.Breaker.Closed;
      consec = 0;
      opened = 0.0;
      probe = false;
      trips = 0;
      probes = 0;
      reopens = 0;
    }
  in
  let tick ~now =
    match m.st with
    | O.Breaker.Open when now >= m.opened +. cooldown ->
      m.st <- O.Breaker.Half_open;
      m.probe <- false
    | O.Breaker.Open | O.Breaker.Closed | O.Breaker.Half_open -> ()
  in
  let trip ~now ~reopen =
    m.st <- O.Breaker.Open;
    m.opened <- now;
    m.consec <- 0;
    m.probe <- false;
    if reopen then m.reopens <- m.reopens + 1 else m.trips <- m.trips + 1
  in
  let rng = U.Xorshift.create seed in
  let now = ref 0.0 in
  let agree = ref true in
  for _ = 1 to ops do
    (match U.Xorshift.int rng 10 with
    | 0 | 1 | 2 ->
      tick ~now:!now;
      (match m.st with
      | O.Breaker.Closed ->
        m.consec <- m.consec + 1;
        if m.consec >= threshold then trip ~now:!now ~reopen:false
      | O.Breaker.Half_open -> trip ~now:!now ~reopen:true
      | O.Breaker.Open -> ());
      O.Breaker.record_failure b ~now:!now
    | 3 | 4 ->
      tick ~now:!now;
      (match m.st with
      | O.Breaker.Closed -> m.consec <- 0
      | O.Breaker.Half_open ->
        m.st <- O.Breaker.Closed;
        m.consec <- 0;
        m.probe <- false
      | O.Breaker.Open -> ());
      O.Breaker.record_success b ~now:!now
    | 5 | 6 ->
      tick ~now:!now;
      (match m.st with
      | O.Breaker.Half_open when not m.probe ->
        m.probe <- true;
        m.probes <- m.probes + 1
      | O.Breaker.Half_open | O.Breaker.Closed | O.Breaker.Open -> ());
      ignore (O.Breaker.allow b ~now:!now)
    | 7 -> now := !now +. 1e-3
    | 8 -> now := !now +. 6e-3
    | _ -> now := !now +. 12e-3);
    tick ~now:!now;
    if
      O.Breaker.state b ~now:!now <> m.st
      || O.Breaker.trips b <> m.trips
      || O.Breaker.reopens b <> m.reopens
      || O.Breaker.probes b <> m.probes
    then agree := false
  done;
  Format.printf "  breaker model: %d ops, %d trips, %d reopens, %d probes@."
    ops m.trips m.reopens m.probes;
  (* A vacuous agreement (state machine never left Closed) would be a
     broken generator, not a passing property. *)
  part "breaker matches model" (!agree && m.trips > 0 && m.reopens > 0)

let () =
  spike_run ~seed:7 ~storm:false;
  spike_run ~seed:20260808 ~storm:true;
  breaker_model_check ~seed:42 ~ops:20_000;
  (* Spike-mode fuzz: the starved token bucket and lock-wait deadlines
     must shed typed (OVLD001/OVLD004) while the audited transaction
     trail stays clean. *)
  let o = V.Txn_fuzz.run ~spike:true ~txns:120 ~seed:11 () in
  Format.printf "  spike fuzz: %d committed, codes [%s]@."
    o.V.Txn_fuzz.committed
    (String.concat "; "
       (List.map
          (fun (c, n) -> Printf.sprintf "%s:%d" c n)
          o.V.Txn_fuzz.ovld_codes));
  part "spike fuzz audit clean"
    ((not (V.Diag.has_errors o.V.Txn_fuzz.diags))
    && List.mem_assoc "OVLD001" o.V.Txn_fuzz.ovld_codes
    && List.mem_assoc "OVLD004" o.V.Txn_fuzz.ovld_codes);
  Format.printf "overload: %s@."
    (if !failures = 0 then "all clean"
     else Printf.sprintf "%d gate%s failed" !failures
         (if !failures = 1 then "" else "s"));
  exit (if !failures = 0 then 0 else 1)
