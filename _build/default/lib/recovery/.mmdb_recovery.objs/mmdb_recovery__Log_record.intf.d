lib/recovery/log_record.mli: Format
