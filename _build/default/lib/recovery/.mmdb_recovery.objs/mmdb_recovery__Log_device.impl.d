lib/recovery/log_device.ml: Float List Log_record Mmdb_storage Printf
