lib/recovery/wal.ml: Array Float Hashtbl List Log_device Log_merge Log_record Mmdb_storage Stable_memory
