lib/recovery/log_merge.ml: List Log_record Mmdb_util
