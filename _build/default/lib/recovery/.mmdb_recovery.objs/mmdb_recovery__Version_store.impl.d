lib/recovery/version_store.ml: Array Float List
