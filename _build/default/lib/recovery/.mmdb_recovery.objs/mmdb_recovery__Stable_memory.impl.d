lib/recovery/stable_memory.ml: Hashtbl List Log_record Queue
