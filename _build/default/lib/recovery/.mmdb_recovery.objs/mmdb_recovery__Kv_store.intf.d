lib/recovery/kv_store.mli: Log_record Stable_memory
