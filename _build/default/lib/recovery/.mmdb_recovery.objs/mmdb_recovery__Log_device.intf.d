lib/recovery/log_device.mli: Log_record Mmdb_storage
