lib/recovery/recovery_manager.mli: Kv_store Wal
