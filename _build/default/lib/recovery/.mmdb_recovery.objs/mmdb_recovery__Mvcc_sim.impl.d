lib/recovery/mvcc_sim.ml: Array Float List Log_record Mmdb_storage Mmdb_util Version_store Wal Workload
