lib/recovery/tps_sim.ml: Array Float List Lock_manager Log_record Mmdb_model Mmdb_storage Mmdb_util Printf Queue Wal Workload
