lib/recovery/recovery_manager.ml: Array Float Hashtbl Kv_store List Lock_manager Log_record Mmdb_storage Mmdb_util Stable_memory Wal Workload
