lib/recovery/kv_store.ml: Array Hashtbl List Log_record Printf Stable_memory
