lib/recovery/log_merge.mli: Log_record
