lib/recovery/tps_sim.mli: Mmdb_util Wal
