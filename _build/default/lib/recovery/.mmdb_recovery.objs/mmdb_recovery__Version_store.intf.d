lib/recovery/version_store.mli:
