lib/recovery/workload.ml: Array List Mmdb_util
