lib/recovery/stable_memory.mli: Log_record
