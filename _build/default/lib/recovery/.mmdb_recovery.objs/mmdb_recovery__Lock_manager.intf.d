lib/recovery/lock_manager.mli:
