lib/recovery/log_record.ml: Format
