lib/recovery/wal.mli: Log_record Mmdb_storage
