lib/recovery/lock_manager.ml: Hashtbl List Printf Queue
