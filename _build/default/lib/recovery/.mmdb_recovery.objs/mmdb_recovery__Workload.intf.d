lib/recovery/workload.mli: Mmdb_util
