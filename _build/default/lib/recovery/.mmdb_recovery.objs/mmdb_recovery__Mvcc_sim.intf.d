lib/recovery/mvcc_sim.mli:
