type page = { completion : float; records : Log_record.t list }

type t = {
  page_write_time : float;
  page_size : int;
  clock : Mmdb_storage.Sim_clock.t;
  mutable busy : float;
  mutable pages : page list; (* reversed *)
  mutable npages : int;
  mutable nbytes : int;
}

let create ?(page_write_time = 10e-3) ?(page_bytes = 4096) ~clock () =
  if page_write_time <= 0.0 then invalid_arg "Log_device: write time <= 0";
  if page_bytes <= 0 then invalid_arg "Log_device: page_bytes <= 0";
  {
    page_write_time;
    page_size = page_bytes;
    clock;
    busy = 0.0;
    pages = [];
    npages = 0;
    nbytes = 0;
  }

let page_bytes t = t.page_size

let write_page t ~at records ~bytes =
  if bytes > t.page_size then
    invalid_arg
      (Printf.sprintf "Log_device.write_page: %d bytes exceed page size %d"
         bytes t.page_size);
  let start = Float.max at t.busy in
  let completion = start +. t.page_write_time in
  t.busy <- completion;
  t.pages <- { completion; records } :: t.pages;
  t.npages <- t.npages + 1;
  t.nbytes <- t.nbytes + bytes;
  (* Keep the shared clock monotone with device activity. *)
  Mmdb_storage.Sim_clock.advance_to t.clock at;
  completion

let busy_until t = t.busy
let pages_written t = t.npages
let bytes_written t = t.nbytes

let durable_records t ~at =
  List.concat_map
    (fun p -> if p.completion <= at then p.records else [])
    (List.rev t.pages)

let durable_pages t ~at =
  List.filter_map
    (fun p -> if p.completion <= at then Some (p.completion, p.records) else None)
    (List.rev t.pages)

let all_records t = List.concat_map (fun p -> p.records) (List.rev t.pages)
