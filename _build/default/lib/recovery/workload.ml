module U = Mmdb_util

type txn = { txn_id : int; updates : (int * int) list }

let generate ~rng ~nrecords ?(updates_per_txn = 6) ~n () =
  if updates_per_txn <= 0 then
    invalid_arg "Workload.generate: updates_per_txn <= 0";
  if updates_per_txn > nrecords then
    invalid_arg "Workload.generate: more updates than accounts";
  List.init n (fun i ->
      let slots =
        U.Xorshift.sample_without_replacement rng ~n:nrecords
          ~k:updates_per_txn
      in
      (* Zero-sum deltas: pair up accounts; odd leftover gets 0. *)
      let updates =
        Array.to_list
          (Array.mapi
             (fun j slot ->
               let amount = 1 + U.Xorshift.int rng 100 in
               let delta =
                 if j = updates_per_txn - 1 && updates_per_txn mod 2 = 1 then 0
                 else if j mod 2 = 0 then amount
                 else -amount
               in
               (slot, delta))
             slots)
      in
      (* Re-balance: make the sum exactly zero by adjusting the last
         slot. *)
      let sum = List.fold_left (fun a (_, d) -> a + d) 0 updates in
      let updates =
        match List.rev updates with
        | (slot, d) :: rest -> List.rev ((slot, d - sum) :: rest)
        | [] -> []
      in
      { txn_id = i; updates })

let log_bytes ~updates_per_txn = 40 + (updates_per_txn * 60)

let apply ~balances txn =
  List.iter
    (fun (slot, delta) -> balances.(slot) <- balances.(slot) + delta)
    txn.updates
