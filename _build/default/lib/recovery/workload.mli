(** Synthetic banking workload (the paper's footnote: ballpark figures
    from Jim Gray's "Notes on Database Operating Systems" example banking
    database).

    Each transaction debits and credits a handful of accounts: with the
    default 6 updates its log is 20 + 6·60 + 20 = 400 bytes — exactly the
    paper's "typical" transaction. *)

type txn = {
  txn_id : int;
  updates : (int * int) list;  (** (account slot, delta) — zero-sum *)
}

val generate : rng:Mmdb_util.Xorshift.t -> nrecords:int ->
  ?updates_per_txn:int -> n:int -> unit -> txn list
(** [generate ~rng ~nrecords ~n ()] makes [n] transactions over accounts
    [0..nrecords), each touching [updates_per_txn] (default 6) {e distinct}
    accounts with deltas that sum to zero (money conservation — the
    test invariant).  @raise Invalid_argument if [updates_per_txn >
    nrecords] or not positive. *)

val log_bytes : updates_per_txn:int -> int
(** Uncompressed log bytes such a transaction writes (400 for 6). *)

val apply : balances:int array -> txn -> unit
(** Apply the deltas to an array (golden-state oracle). *)
