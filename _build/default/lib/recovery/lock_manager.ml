type lock = {
  mutable lock_holder : int option;
  lock_waiters : int Queue.t;
  mutable lock_precommitted : int list; (* newest first *)
}

type txn_state = {
  mutable held : int list; (* keys *)
  mutable waiting_for : int option;
  mutable phase : [ `Active | `Precommitted | `Done ];
}

type grant = { granted_txn : int; dependencies : int list }

type t = {
  locks : (int, lock) Hashtbl.t;
  txns : (int, txn_state) Hashtbl.t;
}

let create () = { locks = Hashtbl.create 64; txns = Hashtbl.create 64 }

let get_lock t key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l
  | None ->
    let l =
      {
        lock_holder = None;
        lock_waiters = Queue.create ();
        lock_precommitted = [];
      }
    in
    Hashtbl.replace t.locks key l;
    l

let get_txn t txn =
  match Hashtbl.find_opt t.txns txn with
  | Some s -> s
  | None ->
    let s = { held = []; waiting_for = None; phase = `Active } in
    Hashtbl.replace t.txns txn s;
    s

let grant_to t lock key txn =
  let st = get_txn t txn in
  lock.lock_holder <- Some txn;
  st.held <- key :: st.held;
  st.waiting_for <- None;
  { granted_txn = txn; dependencies = lock.lock_precommitted }

let acquire t ~txn ~key =
  let st = get_txn t txn in
  (match st.waiting_for with
  | Some k ->
    invalid_arg
      (Printf.sprintf "Lock_manager.acquire: txn %d already waits for %d" txn
         k)
  | None -> ());
  let lock = get_lock t key in
  match lock.lock_holder with
  | Some h when h = txn -> Some { granted_txn = txn; dependencies = [] }
  | Some _ ->
    Queue.push txn lock.lock_waiters;
    st.waiting_for <- Some key;
    None
  | None -> Some (grant_to t lock key txn)

(* Wake the next waiter of a now-free lock, if any. *)
let wake_next t key lock =
  match Queue.pop lock.lock_waiters with
  | exception Queue.Empty -> []
  | next -> [ grant_to t lock key next ]

let precommit t ~txn =
  let st = get_txn t txn in
  (match st.phase with
  | `Active -> ()
  | `Precommitted | `Done ->
    invalid_arg "Lock_manager.precommit: transaction not active");
  st.phase <- `Precommitted;
  let grants =
    List.concat_map
      (fun key ->
        let lock = get_lock t key in
        assert (lock.lock_holder = Some txn);
        lock.lock_holder <- None;
        lock.lock_precommitted <- txn :: lock.lock_precommitted;
        wake_next t key lock)
      st.held
  in
  grants

let release_abort t ~txn =
  let st = get_txn t txn in
  (match st.phase with
  | `Active -> ()
  | `Precommitted | `Done ->
    invalid_arg
      "Lock_manager.release_abort: pre-committed transactions never abort");
  (* Remove any wait registration. *)
  (match st.waiting_for with
  | Some key ->
    let lock = get_lock t key in
    let remaining = Queue.create () in
    Queue.iter (fun w -> if w <> txn then Queue.push w remaining) lock.lock_waiters;
    Queue.clear lock.lock_waiters;
    Queue.transfer remaining lock.lock_waiters;
    st.waiting_for <- None
  | None -> ());
  let grants =
    List.concat_map
      (fun key ->
        let lock = get_lock t key in
        assert (lock.lock_holder = Some txn);
        lock.lock_holder <- None;
        wake_next t key lock)
      st.held
  in
  st.held <- [];
  st.phase <- `Done;
  grants

let finalize t ~txn =
  let st = get_txn t txn in
  (match st.phase with
  | `Precommitted -> ()
  | `Active | `Done ->
    invalid_arg "Lock_manager.finalize: transaction not pre-committed");
  List.iter
    (fun key ->
      let lock = get_lock t key in
      lock.lock_precommitted <-
        List.filter (fun x -> x <> txn) lock.lock_precommitted)
    st.held;
  st.held <- [];
  st.phase <- `Done

let holder t ~key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l.lock_holder
  | None -> None

let waiters t ~key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> List.of_seq (Queue.to_seq l.lock_waiters)
  | None -> []

let precommitted t ~key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> List.rev l.lock_precommitted
  | None -> []

let locks_held t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> List.rev st.held
  | None -> []
