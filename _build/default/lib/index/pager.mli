(** Node-to-page mapping for in-memory tree structures.

    Section 2 analyses both trees in terms of page faults: the AVL tree
    packs [P / (t + 2s)] nodes per page, the B+-tree one node per page.
    This module lazily assigns node ids to simulated disk pages and routes
    every node touch through a {!Mmdb_storage.Buffer_pool}, so lookups on
    the real tree implementations produce the fault counts the paper's
    formulas predict. *)

type t

val create : disk:Mmdb_storage.Disk.t -> pool_capacity:int ->
  policy:Mmdb_storage.Buffer_pool.policy -> nodes_per_page:int -> t
(** @raise Invalid_argument if [nodes_per_page <= 0]. *)

val nodes_per_page : t -> int

val hook : t -> int -> unit
(** [hook t node_id] faults the node's page into the pool (the function to
    install as a visit hook). *)

val attach_avl : t -> Avl.t -> unit
(** Install {!hook} on an AVL tree. *)

val attach_btree : t -> Btree.t -> unit

val attach_bst : t -> Paged_bst.t -> unit

val pages_touched : t -> int
(** Distinct node pages materialised so far (the structure's size [S] in
    pages, for comparison with the paper's [|R|(t+2s)/P]). *)

val pool : t -> Mmdb_storage.Buffer_pool.t
