(** B+-tree — the disk-oriented access method of Section 2.

    Leaves hold whole tuples (the tree {e is} the keyed relation, as in the
    paper's space analysis: [D = ||R|| / (0.69 · P/t)] leaf pages); internal
    nodes hold separator keys and child pointers with fanout
    [⌊P / (K + s)⌋].  Every node corresponds to one page; node ids feed the
    visit hook so experiments can route accesses through a buffer pool.
    Within-node binary search charges one [comp] per probe, giving the
    paper's [⌈log2 ||R||⌉] total comparisons per lookup.

    Leaves are chained left-to-right, so the sequential-access case of
    Section 2 (read [N] records from a start key) walks sibling pointers. *)

type t

val create : env:Mmdb_storage.Env.t -> schema:Mmdb_storage.Schema.t ->
  ?page_size:int -> ?pointer_width:int -> unit -> t
(** [page_size] defaults to the paper's 4096; [pointer_width] (the paper's
    [s]) to 4.  Capacities derive from the schema's key/tuple widths.
    @raise Invalid_argument if the derived fanout is below 3 or leaf
    capacity below 2. *)

val bulk_load : env:Mmdb_storage.Env.t -> schema:Mmdb_storage.Schema.t ->
  ?page_size:int -> ?pointer_width:int -> ?occupancy:float ->
  bytes list -> t
(** [bulk_load ~env ~schema tuples] builds a tree bottom-up from
    key-sorted, duplicate-free [tuples], filling nodes to [occupancy]
    (default 1.0; Yao's 0.69 reproduces random-insertion space usage —
    the occupancy ablation).  The last node per level borrows from its
    left sibling when underfull, so all invariants hold.
    @raise Invalid_argument if the input is unsorted / has duplicates or
    [occupancy] is outside (0.5, 1.0]. *)

val env : t -> Mmdb_storage.Env.t
val schema : t -> Mmdb_storage.Schema.t

val length : t -> int
(** Tuples stored. *)

val height : t -> int
(** Levels of nodes on a root-to-leaf path (1 for a lone leaf root). *)

val node_count : t -> int
(** Total live nodes = pages occupied by the tree. *)

val leaf_count : t -> int

val fanout : t -> int
(** Internal-node child capacity [⌊P/(K+s)⌋]. *)

val leaf_capacity : t -> int
(** Tuples per leaf [⌊(P - header)/t⌋]. *)

val insert : t -> bytes -> unit
(** Add a tuple; equal-key insert replaces. *)

val search : t -> bytes -> bytes option
(** Lookup by standalone encoded key. *)

val delete : t -> bytes -> bool
(** Remove by key with underflow rebalancing; [false] if absent. *)

val min_tuple : t -> bytes option
val max_tuple : t -> bytes option

val iter_in_order : t -> (bytes -> unit) -> unit
(** Leaf-chain scan, ascending (uncharged; verification). *)

val scan_from : t -> bytes -> int -> bytes list
(** [scan_from t key n]: descend to the first key [>= key], then follow
    leaf links collecting up to [n] tuples (Section 2's case 2). *)

val range_scan : t -> lo:bytes -> hi:bytes -> (bytes -> unit) -> unit

val set_visit_hook : t -> (int -> unit) option -> unit
(** Route node touches to a pager (one node = one page). *)

val avg_leaf_occupancy : t -> float
(** Mean fraction of leaf capacity in use — Yao's 69% claim is testable. *)

val check_invariants : t -> bool
(** Sorted keys everywhere, children within separator bounds, uniform leaf
    depth, occupancy >= half except the root. *)
