module S = Mmdb_storage

let nil = -1

type t = {
  env : S.Env.t;
  schema : S.Schema.t;
  y_factor : float;
  mutable tuples : bytes array;
  mutable left : int array;
  mutable right : int array;
  mutable heights : int array;
  mutable allocated : int;
  mutable root : int;
  mutable count : int;
  mutable free_slots : int list;
  mutable visit : (int -> unit) option;
}

let create ?(y_factor = 1.0) ~env ~schema () =
  {
    env;
    schema;
    y_factor;
    tuples = [||];
    left = [||];
    right = [||];
    heights = [||];
    allocated = 0;
    root = nil;
    count = 0;
    free_slots = [];
    visit = None;
  }

let env t = t.env
let schema t = t.schema
let length t = t.count
let node_count t = t.allocated
let set_visit_hook t hook = t.visit <- hook

let touch t n = match t.visit with Some f -> f n | None -> ()

(* An AVL comparison costs Y * comp (Section 2). *)
let charge_comp t =
  t.env.S.Env.counters.S.Counters.comparisons <-
    t.env.S.Env.counters.S.Counters.comparisons + 1;
  S.Sim_clock.advance t.env.S.Env.clock (t.y_factor *. t.env.S.Env.cost.S.Cost.comp)

let h t n = if n = nil then 0 else t.heights.(n)

let update_height t n =
  t.heights.(n) <- 1 + max (h t t.left.(n)) (h t t.right.(n))

let balance_factor t n = h t t.left.(n) - h t t.right.(n)

let height t = h t t.root

let grow t =
  let cap = Array.length t.tuples in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nt = Array.make ncap Bytes.empty in
  let nl = Array.make ncap nil in
  let nr = Array.make ncap nil in
  let nh = Array.make ncap 0 in
  Array.blit t.tuples 0 nt 0 cap;
  Array.blit t.left 0 nl 0 cap;
  Array.blit t.right 0 nr 0 cap;
  Array.blit t.heights 0 nh 0 cap;
  t.tuples <- nt;
  t.left <- nl;
  t.right <- nr;
  t.heights <- nh

let alloc_node t tuple =
  let slot =
    match t.free_slots with
    | s :: rest ->
      t.free_slots <- rest;
      s
    | [] ->
      if t.allocated = Array.length t.tuples then grow t;
      let s = t.allocated in
      t.allocated <- s + 1;
      s
  in
  t.tuples.(slot) <- tuple;
  t.left.(slot) <- nil;
  t.right.(slot) <- nil;
  t.heights.(slot) <- 1;
  slot

let free_node t n = t.free_slots <- n :: t.free_slots

let rotate_right t n =
  let l = t.left.(n) in
  t.left.(n) <- t.right.(l);
  t.right.(l) <- n;
  update_height t n;
  update_height t l;
  l

let rotate_left t n =
  let r = t.right.(n) in
  t.right.(n) <- t.left.(r);
  t.left.(r) <- n;
  update_height t n;
  update_height t r;
  r

let rebalance t n =
  update_height t n;
  let bf = balance_factor t n in
  if bf > 1 then begin
    if balance_factor t t.left.(n) < 0 then t.left.(n) <- rotate_left t t.left.(n);
    rotate_right t n
  end
  else if bf < -1 then begin
    if balance_factor t t.right.(n) > 0 then
      t.right.(n) <- rotate_right t t.right.(n);
    rotate_left t n
  end
  else n

let insert t tuple =
  if Bytes.length tuple <> S.Schema.tuple_width t.schema then
    invalid_arg "Avl.insert: tuple width mismatch";
  let rec ins n =
    if n = nil then begin
      t.count <- t.count + 1;
      alloc_node t tuple
    end
    else begin
      touch t n;
      charge_comp t;
      let c = S.Tuple.compare_keys t.schema tuple t.tuples.(n) in
      if c = 0 then begin
        t.tuples.(n) <- tuple;
        n
      end
      else begin
        if c < 0 then t.left.(n) <- ins t.left.(n)
        else t.right.(n) <- ins t.right.(n);
        rebalance t n
      end
    end
  in
  t.root <- ins t.root

let search t key =
  let rec go n =
    if n = nil then None
    else begin
      touch t n;
      charge_comp t;
      let c = S.Tuple.compare_key_to t.schema t.tuples.(n) key in
      if c = 0 then Some t.tuples.(n)
      else if c > 0 then go t.left.(n)
      else go t.right.(n)
    end
  in
  go t.root

let rec min_node t n =
  if t.left.(n) = nil then n
  else begin
    touch t t.left.(n);
    min_node t t.left.(n)
  end

let delete t key =
  let deleted = ref false in
  let rec del n =
    if n = nil then nil
    else begin
      touch t n;
      charge_comp t;
      let c = S.Tuple.compare_key_to t.schema t.tuples.(n) key in
      if c > 0 then begin
        t.left.(n) <- del t.left.(n);
        rebalance t n
      end
      else if c < 0 then begin
        t.right.(n) <- del t.right.(n);
        rebalance t n
      end
      else begin
        deleted := true;
        if t.left.(n) = nil then begin
          let r = t.right.(n) in
          free_node t n;
          r
        end
        else if t.right.(n) = nil then begin
          let l = t.left.(n) in
          free_node t n;
          l
        end
        else begin
          (* Two children: replace payload with in-order successor, then
             delete the successor from the right subtree. *)
          let succ = min_node t t.right.(n) in
          t.tuples.(n) <- t.tuples.(succ);
          let key' = S.Tuple.key_bytes t.schema t.tuples.(succ) in
          let rec del_min m =
            if m = nil then nil
            else begin
              touch t m;
              charge_comp t;
              let c = S.Tuple.compare_key_to t.schema t.tuples.(m) key' in
              if c > 0 then begin
                t.left.(m) <- del_min t.left.(m);
                rebalance t m
              end
              else if c < 0 then begin
                t.right.(m) <- del_min t.right.(m);
                rebalance t m
              end
              else begin
                (* Successor has no left child by construction. *)
                let r = t.right.(m) in
                free_node t m;
                r
              end
            end
          in
          t.right.(n) <- del_min t.right.(n);
          rebalance t n
        end
      end
    end
  in
  t.root <- del t.root;
  if !deleted then t.count <- t.count - 1;
  !deleted

let min_tuple t =
  if t.root = nil then None
  else begin
    touch t t.root;
    Some t.tuples.(min_node t t.root)
  end

let max_tuple t =
  let rec go n = if t.right.(n) = nil then n else go t.right.(n) in
  if t.root = nil then None else Some t.tuples.(go t.root)

let iter_in_order t f =
  let rec go n =
    if n <> nil then begin
      go t.left.(n);
      f t.tuples.(n);
      go t.right.(n)
    end
  in
  go t.root

exception Done

let scan_from t key n =
  let acc = ref [] in
  let remaining = ref n in
  (* In-order traversal pruned to keys >= key; descent comparisons are
     charged, successor pointer-chases only touch pages. *)
  let rec go node =
    if node <> nil then begin
      touch t node;
      charge_comp t;
      let c = S.Tuple.compare_key_to t.schema t.tuples.(node) key in
      if c >= 0 then begin
        go t.left.(node);
        if !remaining > 0 then begin
          acc := t.tuples.(node) :: !acc;
          decr remaining;
          if !remaining = 0 then raise Done
        end;
        go_all t.right.(node)
      end
      else go t.right.(node)
    end
  and go_all node =
    if node <> nil then begin
      touch t node;
      go_all t.left.(node);
      if !remaining > 0 then begin
        acc := t.tuples.(node) :: !acc;
        decr remaining;
        if !remaining = 0 then raise Done
      end;
      go_all t.right.(node)
    end
  in
  (try go t.root with Done -> ());
  List.rev !acc

let range_scan t ~lo ~hi f =
  let rec go node =
    if node <> nil then begin
      touch t node;
      charge_comp t;
      let c_lo = S.Tuple.compare_key_to t.schema t.tuples.(node) lo in
      charge_comp t;
      let c_hi = S.Tuple.compare_key_to t.schema t.tuples.(node) hi in
      if c_lo > 0 then go t.left.(node);
      if c_lo >= 0 && c_hi <= 0 then f t.tuples.(node);
      if c_hi < 0 then go t.right.(node)
    end
  in
  go t.root

let check_invariants t =
  let ok = ref true in
  let rec check n =
    if n = nil then 0
    else begin
      let hl = check t.left.(n) in
      let hr = check t.right.(n) in
      if abs (hl - hr) > 1 then ok := false;
      let expect = 1 + max hl hr in
      if t.heights.(n) <> expect then ok := false;
      expect
    end
  in
  ignore (check t.root);
  (* In-order keys strictly ascending. *)
  let prev = ref None in
  iter_in_order t (fun tup ->
      (match !prev with
      | Some p -> if S.Tuple.compare_keys t.schema p tup >= 0 then ok := false
      | None -> ());
      prev := Some tup);
  !ok
