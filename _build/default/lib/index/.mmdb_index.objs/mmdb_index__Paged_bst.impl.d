lib/index/paged_bst.ml: Array Bytes Mmdb_storage
