lib/index/btree.ml: Array Bytes Float List Mmdb_storage
