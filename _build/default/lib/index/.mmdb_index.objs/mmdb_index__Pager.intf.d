lib/index/pager.mli: Avl Btree Mmdb_storage Paged_bst
