lib/index/avl.mli: Mmdb_storage
