lib/index/avl.ml: Array Bytes List Mmdb_storage
