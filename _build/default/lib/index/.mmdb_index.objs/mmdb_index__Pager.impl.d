lib/index/pager.ml: Avl Btree Hashtbl Mmdb_storage Paged_bst
