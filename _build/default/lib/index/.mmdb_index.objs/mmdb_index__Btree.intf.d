lib/index/btree.mli: Mmdb_storage
