lib/index/paged_bst.mli: Mmdb_storage
