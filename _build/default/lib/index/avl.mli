(** AVL tree holding whole tuples — the main-memory access method of
    Section 2.

    The paper's AVL stores the tuples themselves with two child pointers
    per node, so the structure occupies [|R|·(t + 2s) / P] pages.  Nodes
    here live in a growable array; a node's array index determines which
    simulated page it lands on (see {!Paged_avl}), reproducing the paper's
    observation that without special precautions each of the [C] nodes on a
    root-to-leaf path sits on a different page.

    Keys are the schema's key field; key comparisons are charged to the
    environment ([comp], scaled by the [y_factor] — the paper's [Y ≤ 1]
    allowing an AVL comparison to be cheaper than a B+-tree's
    within-page search).  Duplicate-key inserts replace the stored tuple. *)

type t

val create : ?y_factor:float -> env:Mmdb_storage.Env.t ->
  schema:Mmdb_storage.Schema.t -> unit -> t
(** [y_factor] defaults to 1.0. *)

val env : t -> Mmdb_storage.Env.t
val schema : t -> Mmdb_storage.Schema.t

val length : t -> int
(** Number of tuples stored. *)

val height : t -> int
(** Height in nodes (0 for empty). *)

val node_count : t -> int
(** Allocated node slots, including freed ones (drives page placement). *)

val insert : t -> bytes -> unit
(** [insert t tuple] adds (or replaces, on equal key) a tuple. *)

val search : t -> bytes -> bytes option
(** [search t key] finds the tuple whose key field equals the encoded
    [key] (standalone key bytes, as from
    {!Mmdb_storage.Tuple.encode_int_key}). *)

val delete : t -> bytes -> bool
(** [delete t key] removes the tuple with that key; [false] if absent. *)

val min_tuple : t -> bytes option
val max_tuple : t -> bytes option

val iter_in_order : t -> (bytes -> unit) -> unit
(** Visit every tuple in ascending key order (no comparison charges; used
    for verification). *)

val scan_from : t -> bytes -> int -> bytes list
(** [scan_from t key n] locates the smallest key [>= key] and returns up to
    [n] tuples in ascending order — the paper's sequential-access case 2.
    Charges comparisons for the descent; successor steps charge pointer
    chases via the visit hook but no comparisons. *)

val range_scan : t -> lo:bytes -> hi:bytes -> (bytes -> unit) -> unit
(** All tuples with [lo <= key <= hi], ascending. *)

val set_visit_hook : t -> (int -> unit) option -> unit
(** [set_visit_hook t (Some f)] makes every node touch during subsequent
    operations call [f node_id] — {!Paged_avl} uses this to route touches
    through a buffer pool. *)

val check_invariants : t -> bool
(** AVL balance (|bf| <= 1), correct heights, and in-order key sorting. *)
