module S = Mmdb_storage

type t = {
  disk : S.Disk.t;
  pool : S.Buffer_pool.t;
  nodes_per_page : int;
  page_of_group : (int, int) Hashtbl.t; (* node_id / npp -> disk page id *)
}

let create ~disk ~pool_capacity ~policy ~nodes_per_page =
  if nodes_per_page <= 0 then invalid_arg "Pager.create: nodes_per_page <= 0";
  {
    disk;
    pool = S.Buffer_pool.create ~disk ~capacity:pool_capacity policy;
    nodes_per_page;
    page_of_group = Hashtbl.create 1024;
  }

let nodes_per_page t = t.nodes_per_page

let hook t node_id =
  let group = node_id / t.nodes_per_page in
  let pid =
    match Hashtbl.find_opt t.page_of_group group with
    | Some pid -> pid
    | None ->
      let pid = S.Disk.alloc t.disk in
      Hashtbl.replace t.page_of_group group pid;
      pid
  in
  ignore (S.Buffer_pool.get t.pool pid)

let attach_avl t avl = Avl.set_visit_hook avl (Some (hook t))
let attach_btree t bt = Btree.set_visit_hook bt (Some (hook t))
let attach_bst t bst = Paged_bst.set_visit_hook bst (Some (hook t))
let pages_touched t = Hashtbl.length t.page_of_group
let pool t = t.pool
