module S = Mmdb_storage

let run keep_matches r s =
  let r_schema = S.Relation.schema r and s_schema = S.Relation.schema s in
  Join_common.check_joinable r_schema s_schema;
  let env = S.Relation.env r in
  (* Key set of S: |S| keys of K bytes each — the "TID-key pair" size
     argument makes this the in-memory side. *)
  let keys = Hashtbl.create 256 in
  S.Relation.iter_tuples_nocharge s (fun tuple ->
      S.Env.charge_hash env;
      Hashtbl.replace keys
        (Bytes.unsafe_to_string (S.Tuple.key_bytes s_schema tuple))
        ());
  let out =
    S.Relation.create ~disk:(S.Relation.disk r)
      ~name:(S.Relation.name r ^ if keep_matches then ".semi" else ".anti")
      ~schema:r_schema
  in
  S.Relation.iter_tuples_nocharge r (fun tuple ->
      S.Env.charge_hash env;
      S.Env.charge_comp env;
      let hit =
        Hashtbl.mem keys
          (Bytes.unsafe_to_string (S.Tuple.key_bytes r_schema tuple))
      in
      if hit = keep_matches then S.Relation.append out tuple);
  S.Relation.seal out;
  out

let semi r s = run true r s
let anti r s = run false r s
