module S = Mmdb_storage

let partitions ~mem_pages ~fudge ~r_pages =
  let rf = float_of_int r_pages *. fudge in
  let m = float_of_int mem_pages in
  if rf <= m then 0
  else max 1 (int_of_float (Float.ceil ((rf -. m) /. (m -. 1.0))))

let q_fraction ~mem_pages ~fudge ~r_pages =
  let b = partitions ~mem_pages ~fudge ~r_pages in
  if b = 0 then 1.0
  else
    let r0 = float_of_int (mem_pages - b) /. fudge in
    Float.min 1.0 (Float.max 0.0 (r0 /. float_of_int (max 1 r_pages)))

let rec join_rec ~mem_pages ~fudge ~seed ~depth ~scan r s emit =
  let r_schema = S.Relation.schema r and s_schema = S.Relation.schema s in
  let env = S.Relation.env r in
  let hash_r = Hash_fn.create ~env ~schema:r_schema ~seed in
  let hash_s = Hash_fn.create ~env ~schema:s_schema ~seed in
  let r_pages = S.Relation.npages r in
  let b = partitions ~mem_pages ~fudge ~r_pages in
  let q = q_fraction ~mem_pages ~fudge ~r_pages in
  let write_mode = if b <= 1 then S.Disk.Seq else S.Disk.Rand in
  let r0, rb =
    Partition.split_fraction ~scan ~q ~nbuckets:b ~hash:hash_r ~write_mode r
  in
  let s0, sb =
    Partition.split_fraction ~scan ~q ~nbuckets:b ~hash:hash_s ~write_mode s
  in
  let table =
    Hash_table.create ~env ~schema:r_schema
      ~tuples_per_page:(S.Relation.tuples_per_page r)
  in
  let count = ref 0 in
  (* Partition 0 joins during the split: build from R0, probe with S0. *)
  List.iter (fun tuple -> Hash_table.insert table tuple) r0;
  List.iter
    (fun tuple ->
      Hash_table.probe table ~probe_schema:s_schema tuple (fun r_tup ->
          incr count;
          emit r_tup tuple))
    s0;
  (* Disk partitions: join each pair, recursing when R_i overflows. *)
  for i = 0 to b - 1 do
    let ri = rb.(i) and si = sb.(i) in
    if S.Relation.ntuples ri > 0 && S.Relation.ntuples si > 0 then begin
      let fits =
        float_of_int (S.Relation.npages ri) *. fudge
        <= float_of_int mem_pages
      in
      if fits || depth >= 8 then begin
        Hash_table.clear table;
        Partition.iter_bucket ri (fun tuple ->
            ignore (Hash_fn.hash hash_r tuple);
            Hash_table.insert table tuple);
        Partition.iter_bucket si (fun tuple ->
            ignore (Hash_fn.hash hash_s tuple);
            Hash_table.probe table ~probe_schema:s_schema tuple (fun r_tup ->
                incr count;
                emit r_tup tuple))
      end
      else
        (* Overflow: an extra pass with a fresh hash function (the
           recursive remedy of Section 3.3). *)
        count :=
          !count
          + join_rec ~mem_pages ~fudge ~seed:(seed + (depth * 7919) + 1)
              ~depth:(depth + 1)
              ~scan:(Partition.Charged S.Disk.Seq) ri si emit
    end
  done;
  Hash_table.clear table;
  Partition.free rb;
  Partition.free sb;
  !count

let join ~mem_pages ~fudge ?(seed = 0xb1d) r s emit =
  if mem_pages <= 1 then invalid_arg "Hybrid_hash.join: mem_pages <= 1";
  Join_common.check_joinable (S.Relation.schema r) (S.Relation.schema s);
  join_rec ~mem_pages ~fudge ~seed ~depth:0 ~scan:Partition.Free r s emit
