(** Shared pieces of the join operators: key compatibility, cross-schema
    key comparison, result schema construction. *)

val check_joinable : Mmdb_storage.Schema.t -> Mmdb_storage.Schema.t -> unit
(** @raise Invalid_argument unless the two schemas' key columns have equal
    widths (keys are compared byte-wise). *)

val compare_rs : Mmdb_storage.Env.t -> r_schema:Mmdb_storage.Schema.t ->
  s_schema:Mmdb_storage.Schema.t -> bytes -> bytes -> int
(** [compare_rs env ~r_schema ~s_schema r_tup s_tup] compares the key
    fields across schemas, charging one [comp]. *)

val result_schema : r_schema:Mmdb_storage.Schema.t ->
  s_schema:Mmdb_storage.Schema.t -> Mmdb_storage.Schema.t
(** Schema of the concatenated join result: R's columns then S's, column
    names prefixed ["r_"] / ["s_"], keyed on R's key. *)

val concat_tuples : r_schema:Mmdb_storage.Schema.t ->
  s_schema:Mmdb_storage.Schema.t -> bytes -> bytes -> bytes
(** Byte-level concatenation matching {!result_schema}. *)

type emit = bytes -> bytes -> unit
(** Join output callback [f r_tuple s_tuple].  The paper excludes the cost
    of writing the result, so emission is uncharged; callers may count or
    materialise as they wish. *)
