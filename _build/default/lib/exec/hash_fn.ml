module S = Mmdb_storage

type t = {
  env : S.Env.t;
  schema : S.Schema.t;
  seed : int;
}

let create ~env ~schema ~seed = { env; schema; seed }

(* Mix the FNV key hash with the seed through a splitmix64-style finaliser
   so different seeds give effectively independent functions. *)
let mix h seed =
  let x = Int64.of_int (h lxor seed) in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
  let x = Int64.logxor x (Int64.shift_right_logical x 31) in
  Int64.to_int (Int64.shift_right_logical x 2)

let hash t tuple =
  S.Env.charge_hash t.env;
  mix (S.Tuple.hash_key t.schema tuple) t.seed

let uniform t tuple =
  let h = hash t tuple in
  float_of_int (h land 0xFFFFFF) /. 16777216.0
