module S = Mmdb_storage

type emit = bytes -> bytes -> unit

let check_joinable r_schema s_schema =
  if S.Schema.key_width r_schema <> S.Schema.key_width s_schema then
    invalid_arg "join: key widths differ between relations"

let compare_rs env ~r_schema ~s_schema r_tup s_tup =
  S.Env.charge_comp env;
  let r_key = S.Tuple.key_bytes r_schema r_tup in
  S.Tuple.compare_key_to s_schema s_tup r_key |> Int.neg

let prefixed prefix (c : S.Schema.column) =
  { c with S.Schema.name = prefix ^ c.S.Schema.name }

let result_schema ~r_schema ~s_schema =
  let r_cols = List.map (prefixed "r_") (S.Schema.columns r_schema) in
  let s_cols = List.map (prefixed "s_") (S.Schema.columns s_schema) in
  let key =
    "r_" ^ (S.Schema.column_at r_schema (S.Schema.key_index r_schema)).S.Schema.name
  in
  S.Schema.create ~key (r_cols @ s_cols)

let concat_tuples ~r_schema ~s_schema r_tup s_tup =
  let rw = S.Schema.tuple_width r_schema in
  let sw = S.Schema.tuple_width s_schema in
  let out = Bytes.create (rw + sw) in
  Bytes.blit r_tup 0 out 0 rw;
  Bytes.blit s_tup 0 out rw sw;
  out
