(** Semi-join and anti-join by hashing.

    [semi r s] keeps the tuples of R with at least one key match in S
    ("employees whose department exists"); [anti r s] keeps those with
    none.  S contributes only its key set — the TID-key-pair economy of
    Section 3.2 — so the build side is tiny and one pass over R suffices
    regardless of memory.  Results preserve R's schema and duplicates
    (bag semantics, matching what a join-then-project would keep of R). *)

val semi : Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t
(** @raise Invalid_argument on key-width mismatch. *)

val anti : Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t
