(** Measurement wrapper for operator executions.

    Captures the simulated-time and counter deltas of one operator run, so
    experiments can report "measured" numbers next to the analytic model's
    predictions. *)

type t = {
  output_tuples : int;
  seconds : float;  (** simulated seconds charged during the run *)
  counters : Mmdb_storage.Counters.t;  (** activity delta *)
}

val measure : Mmdb_storage.Env.t -> (unit -> int) -> t
(** [measure env f] runs [f] (returning its output-tuple count) and
    captures the clock/counter deltas it charged to [env]. *)

val pp : Format.formatter -> t -> unit
