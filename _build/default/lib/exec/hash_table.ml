module S = Mmdb_storage

type t = {
  env : S.Env.t;
  schema : S.Schema.t;
  tuples_per_page : int;
  buckets : (string, bytes list ref) Hashtbl.t; (* key bytes -> tuples *)
  mutable count : int;
}

let create ~env ~schema ~tuples_per_page =
  if tuples_per_page <= 0 then
    invalid_arg "Hash_table.create: tuples_per_page <= 0";
  { env; schema; tuples_per_page; buckets = Hashtbl.create 256; count = 0 }

let key_string schema tuple =
  Bytes.unsafe_to_string (S.Tuple.key_bytes schema tuple)

let insert t tuple =
  S.Env.charge_move t.env;
  let k = key_string t.schema tuple in
  (match Hashtbl.find_opt t.buckets k with
  | Some cell -> cell := tuple :: !cell
  | None -> Hashtbl.replace t.buckets k (ref [ tuple ]));
  t.count <- t.count + 1

let length t = t.count

let data_pages t =
  (t.count + t.tuples_per_page - 1) / t.tuples_per_page

let memory_pages t ~fudge =
  int_of_float (Float.ceil (float_of_int (data_pages t) *. fudge))

let probe t ~probe_schema s_tuple f =
  let k = key_string probe_schema s_tuple in
  match Hashtbl.find_opt t.buckets k with
  | None ->
    (* One comparison to reject the empty bucket. *)
    S.Env.charge_comp t.env
  | Some cell ->
    List.iter
      (fun r_tuple ->
        S.Env.charge_comp t.env;
        f r_tuple)
      (List.rev !cell)

let iter t f =
  Hashtbl.iter (fun _ cell -> List.iter f (List.rev !cell)) t.buckets

let clear t =
  Hashtbl.reset t.buckets;
  t.count <- 0
