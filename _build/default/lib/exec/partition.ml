module S = Mmdb_storage

type scan_mode = Free | Charged of S.Disk.io_mode

let scan_rel ~scan rel f =
  match scan with
  | Free -> S.Relation.iter_tuples_nocharge rel f
  | Charged mode -> S.Relation.iter_tuples ~mode rel f

let make_buckets rel nbuckets ~write_mode suffix =
  let disk = S.Relation.disk rel in
  let schema = S.Relation.schema rel in
  Array.init nbuckets (fun i ->
      let b =
        S.Relation.create ~disk
          ~name:(Printf.sprintf "%s.%s%d" (S.Relation.name rel) suffix i)
          ~schema
      in
      S.Relation.set_write_mode b write_mode;
      b)

let split_fraction ~scan ~q ~nbuckets ~hash ~write_mode rel =
  if nbuckets < 0 then invalid_arg "Partition: nbuckets < 0";
  if q < 0.0 || q > 1.0 then invalid_arg "Partition: q outside [0,1]";
  let env = S.Relation.env rel in
  let buckets = make_buckets rel (max nbuckets 0) ~write_mode "part" in
  let memory = ref [] in
  scan_rel ~scan rel (fun tuple ->
      let u = Hash_fn.uniform hash tuple in
      if u < q || nbuckets = 0 then memory := tuple :: !memory
      else begin
        let scaled = (u -. q) /. Float.max 1e-12 (1.0 -. q) in
        let b = int_of_float (scaled *. float_of_int nbuckets) in
        let b = min (nbuckets - 1) (max 0 b) in
        S.Env.charge_move env;
        S.Relation.append buckets.(b) tuple
      end);
  Array.iter S.Relation.seal buckets;
  (List.rev !memory, buckets)

let split ~scan ~nbuckets ~hash ~write_mode rel =
  if nbuckets <= 0 then invalid_arg "Partition.split: nbuckets <= 0";
  let mem, buckets =
    split_fraction ~scan ~q:0.0 ~nbuckets ~hash ~write_mode rel
  in
  assert (mem = []);
  buckets

let iter_bucket rel f = S.Relation.iter_tuples ~mode:S.Disk.Seq rel f

let free buckets = Array.iter S.Relation.free_pages buckets
