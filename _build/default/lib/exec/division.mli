(** Relational division by hashing.

    Section 3.1: "many of the techniques used for executing the relational
    join operator can also be used for other relational operators (e.g.
    aggregate functions, cross product, and {e division})".
    [R(x..., y) ÷ S(y)] returns the distinct [x...] groups of R associated
    with {e every} key value of S — e.g. "suppliers who supply all parts".

    Implementation: the divisor's key set is collected in memory (it is
    small — the paper's argument for TID-key structures); R is grouped by
    its quotient columns with hybrid-style partitioning when the group
    table would overflow memory, and a group is emitted once its divisor
    set covers S. *)

val divide : mem_pages:int -> fudge:float -> ?seed:int ->
  divisor_col:string -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t
(** [divide ~divisor_col r s] — [divisor_col] names the column of [r]
    matched against [s]'s key column (equal widths required).  The result
    schema is [r]'s columns minus [divisor_col], keyed on the first
    remaining column.  An empty [s] yields the distinct projection of the
    quotient columns (vacuous universal quantification).
    @raise Invalid_argument on unknown columns, width mismatch, or when
    [r] has no other column. *)
