(** Sorted-run generation by replacement selection (Section 3.4, step 1).

    "Scan S and produce output runs using a selection tree or some other
    priority queue structure ... a typical run will be approximately 2·|M|
    pages long."  The initial read of the relation is free (the paper
    excludes it); writing run pages charges sequential I/O; every heap
    comparison charges [comp + swap] — matching the
    [||R||·log2({M}) · (comp+swap)] term. *)

val runs : mem_pages:int -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t list
(** [runs ~mem_pages rel] produces sorted runs of [rel] using a priority
    queue of [mem_pages] pages' worth of tuples.  Each run is a sealed
    temporary relation on [rel]'s disk; the caller frees them.
    @raise Invalid_argument if [mem_pages <= 0]. *)

val expected_run_length : mem_pages:int -> float
(** [2·|M|] pages — Knuth's replacement-selection expectation, used by
    tests. *)
