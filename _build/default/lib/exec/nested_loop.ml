module S = Mmdb_storage

let run ~charged r s emit =
  let r_schema = S.Relation.schema r and s_schema = S.Relation.schema s in
  Join_common.check_joinable r_schema s_schema;
  let env = S.Relation.env r in
  let count = ref 0 in
  S.Relation.iter_tuples_nocharge r (fun r_tup ->
      let r_key = S.Tuple.key_bytes r_schema r_tup in
      let scan =
        if charged then S.Relation.iter_tuples ~mode:S.Disk.Seq s
        else S.Relation.iter_tuples_nocharge s
      in
      scan (fun s_tup ->
          if charged then S.Env.charge_comp env;
          if S.Tuple.compare_key_to s_schema s_tup r_key = 0 then begin
            incr count;
            emit r_tup s_tup
          end));
  !count

let join r s emit = run ~charged:true r s emit
let join_uncharged r s emit = run ~charged:false r s emit
