module S = Mmdb_storage

type spec =
  | Count
  | Sum of string
  | Min of string
  | Max of string
  | Avg of string

type acc = {
  mutable n : int;
  mutable sums : int array; (* one slot per spec needing a column *)
  mutable mins : int array;
  mutable maxs : int array;
}

let spec_column schema = function
  | Count -> None
  | Sum c | Min c | Max c | Avg c -> Some (S.Schema.column_index schema c)

let spec_name = function
  | Count -> "count"
  | Sum c -> "sum_" ^ c
  | Min c -> "min_" ^ c
  | Max c -> "max_" ^ c
  | Avg c -> "avg_" ^ c

let result_schema schema specs =
  if specs = [] then invalid_arg "Aggregate: no aggregate specs";
  let key_col = S.Schema.column_at schema (S.Schema.key_index schema) in
  let group_col = { key_col with S.Schema.name = "group" } in
  let agg_cols =
    List.map (fun sp -> S.Schema.column (spec_name sp) S.Schema.Int) specs
  in
  S.Schema.create ~key:"group" (group_col :: agg_cols)

let fresh_acc nspecs =
  {
    n = 0;
    sums = Array.make nspecs 0;
    mins = Array.make nspecs max_int;
    maxs = Array.make nspecs min_int;
  }

let update_acc env schema specs cols acc tuple =
  acc.n <- acc.n + 1;
  List.iteri
    (fun i sp ->
      match (sp, cols.(i)) with
      | Count, _ -> ()
      | (Sum _ | Avg _), Some c ->
        acc.sums.(i) <- acc.sums.(i) + S.Tuple.get_int schema tuple c
      | Min _, Some c ->
        S.Env.charge_comp env;
        acc.mins.(i) <- min acc.mins.(i) (S.Tuple.get_int schema tuple c)
      | Max _, Some c ->
        S.Env.charge_comp env;
        acc.maxs.(i) <- max acc.maxs.(i) (S.Tuple.get_int schema tuple c)
      | (Sum _ | Avg _ | Min _ | Max _), None -> assert false)
    specs

let acc_values specs acc =
  List.mapi
    (fun i sp ->
      match sp with
      | Count -> acc.n
      | Sum _ -> acc.sums.(i)
      | Min _ -> acc.mins.(i)
      | Max _ -> acc.maxs.(i)
      | Avg _ -> if acc.n = 0 then 0 else acc.sums.(i) / acc.n)
    specs

(* Aggregate a tuple stream into [groups]; charges one hash per tuple and
   one comp per group-table lookup. *)
let feed env schema specs cols hash groups tuple =
  ignore (Hash_fn.hash hash tuple);
  let k = Bytes.unsafe_to_string (S.Tuple.key_bytes schema tuple) in
  S.Env.charge_comp env;
  let acc =
    match Hashtbl.find_opt groups k with
    | Some a -> a
    | None ->
      let a = fresh_acc (List.length specs) in
      S.Env.charge_move env;
      Hashtbl.replace groups k a;
      a
  in
  update_acc env schema specs cols acc tuple

let emit_groups env out_schema specs groups out =
  ignore env;
  (* Deterministic output order: sorted by group key bytes. *)
  let items = Hashtbl.fold (fun k a l -> (k, a) :: l) groups [] in
  let items = List.sort (fun (a, _) (b, _) -> String.compare a b) items in
  List.iter
    (fun (k, acc) ->
      let vals = acc_values specs acc in
      let width = S.Schema.tuple_width out_schema in
      let tup = Bytes.make width '\000' in
      Bytes.blit_string k 0 tup 0 (String.length k);
      List.iteri
        (fun i v -> S.Tuple.set_int out_schema tup (i + 1) v)
        vals;
      S.Relation.append out tup)
    items

let aggregate_stream rel specs ~scan ~hash out =
  let schema = S.Relation.schema rel in
  let env = S.Relation.env rel in
  let cols = Array.of_list (List.map (spec_column schema) specs) in
  let groups = Hashtbl.create 1024 in
  (match scan with
  | `Free -> S.Relation.iter_tuples_nocharge rel (feed env schema specs cols hash groups)
  | `Charged ->
    S.Relation.iter_tuples ~mode:S.Disk.Seq rel
      (feed env schema specs cols hash groups));
  emit_groups env (S.Relation.schema out) specs groups out

let one_pass rel specs =
  let schema = S.Relation.schema rel in
  let env = S.Relation.env rel in
  let out_schema = result_schema schema specs in
  let out =
    S.Relation.create ~disk:(S.Relation.disk rel)
      ~name:(S.Relation.name rel ^ ".agg") ~schema:out_schema
  in
  let hash = Hash_fn.create ~env ~schema ~seed:0xa66 in
  aggregate_stream rel specs ~scan:`Free ~hash out;
  S.Relation.seal out;
  out

let sort_based ~mem_pages rel specs =
  let schema = S.Relation.schema rel in
  let env = S.Relation.env rel in
  let out_schema = result_schema schema specs in
  let out =
    S.Relation.create ~disk:(S.Relation.disk rel)
      ~name:(S.Relation.name rel ^ ".agg") ~schema:out_schema
  in
  let cols = Array.of_list (List.map (spec_column schema) specs) in
  let sorted = External_sort.sort ~mem_pages rel in
  (* One pass over the sorted stream: adjacent equal keys form a group. *)
  let current_key = ref None in
  let acc = ref (fresh_acc (List.length specs)) in
  let emit_current () =
    match !current_key with
    | None -> ()
    | Some key ->
      let vals = acc_values specs !acc in
      let width = S.Schema.tuple_width out_schema in
      let tup = Bytes.make width '\000' in
      Bytes.blit key 0 tup 0 (Bytes.length key);
      List.iteri (fun i v -> S.Tuple.set_int out_schema tup (i + 1) v) vals;
      S.Relation.append out tup
  in
  S.Relation.iter_tuples ~mode:S.Disk.Seq sorted (fun tuple ->
      let key = S.Tuple.key_bytes schema tuple in
      let same =
        match !current_key with
        | Some k ->
          S.Env.charge_comp env;
          Bytes.equal k key
        | None -> false
      in
      if not same then begin
        emit_current ();
        current_key := Some key;
        acc := fresh_acc (List.length specs)
      end;
      update_acc env schema specs cols !acc tuple);
  emit_current ();
  S.Relation.free_pages sorted;
  S.Relation.seal out;
  out

let group_count rel =
  let schema = S.Relation.schema rel in
  let seen = Hashtbl.create 1024 in
  S.Relation.iter_tuples_nocharge rel (fun tuple ->
      Hashtbl.replace seen
        (Bytes.unsafe_to_string (S.Tuple.key_bytes schema tuple))
        ());
  Hashtbl.length seen

let hybrid ~mem_pages ~fudge ?(seed = 0xa66) rel specs =
  if mem_pages <= 1 then invalid_arg "Aggregate.hybrid: mem_pages <= 1";
  let schema = S.Relation.schema rel in
  let env = S.Relation.env rel in
  let out_schema = result_schema schema specs in
  let out =
    S.Relation.create ~disk:(S.Relation.disk rel)
      ~name:(S.Relation.name rel ^ ".agg") ~schema:out_schema
  in
  let hash = Hash_fn.create ~env ~schema ~seed in
  (* Groups needed ~= distinct keys; bound by input pages.  Partition so
     each bucket's group table fits: B as in the hybrid join, treating the
     input as R. *)
  let b =
    Hybrid_hash.partitions ~mem_pages ~fudge
      ~r_pages:(S.Relation.npages rel)
  in
  if b = 0 then aggregate_stream rel specs ~scan:`Free ~hash out
  else begin
    let q = Hybrid_hash.q_fraction ~mem_pages ~fudge ~r_pages:(S.Relation.npages rel) in
    let write_mode = if b <= 1 then S.Disk.Seq else S.Disk.Rand in
    let mem_part, buckets =
      Partition.split_fraction ~scan:Partition.Free ~q ~nbuckets:b ~hash
        ~write_mode rel
    in
    (* In-memory slice aggregates immediately. *)
    let cols = Array.of_list (List.map (spec_column schema) specs) in
    let groups = Hashtbl.create 1024 in
    List.iter (feed env schema specs cols hash groups) mem_part;
    emit_groups env out_schema specs groups out;
    (* Disk partitions: aggregate each on re-read. *)
    Array.iter
      (fun bucket ->
        if S.Relation.ntuples bucket > 0 then begin
          let groups = Hashtbl.create 256 in
          Partition.iter_bucket bucket
            (feed env schema specs cols hash groups);
          emit_groups env out_schema specs groups out
        end)
      buckets;
    Partition.free buckets
  end;
  S.Relation.seal out;
  out
