module S = Mmdb_storage
module U = Mmdb_util

let join ~mem_pages ~fudge ?(seed = 0x3a) r s emit =
  if mem_pages <= 0 then invalid_arg "Vm_hash.join: mem_pages <= 0";
  let r_schema = S.Relation.schema r and s_schema = S.Relation.schema s in
  Join_common.check_joinable r_schema s_schema;
  let env = S.Relation.env r in
  let rng = U.Xorshift.create seed in
  let hash_r = Hash_fn.create ~env ~schema:r_schema ~seed in
  let hash_s = Hash_fn.create ~env ~schema:s_schema ~seed in
  let table =
    Hash_table.create ~env ~schema:r_schema
      ~tuples_per_page:(S.Relation.tuples_per_page r)
  in
  (* One table access under VM: fault with probability 1 - |M|/T where T
     is the table's current size in memory pages. *)
  let vm_touch () =
    let t_pages = max 1 (Hash_table.memory_pages table ~fudge) in
    if t_pages > mem_pages then begin
      let fault_prob =
        1.0 -. (float_of_int mem_pages /. float_of_int t_pages)
      in
      if U.Xorshift.float rng 1.0 < fault_prob then
        S.Env.charge_io_rand_read env
    end
  in
  (* Build over all of R. *)
  S.Relation.iter_tuples_nocharge r (fun tuple ->
      ignore (Hash_fn.hash hash_r tuple);
      vm_touch ();
      Hash_table.insert table tuple);
  (* Probe with all of S. *)
  let count = ref 0 in
  S.Relation.iter_tuples_nocharge s (fun tuple ->
      ignore (Hash_fn.hash hash_s tuple);
      vm_touch ();
      Hash_table.probe table ~probe_schema:s_schema tuple (fun r_tup ->
          incr count;
          emit r_tup tuple));
  Hash_table.clear table;
  !count
