(** Index nested-loop join: probe a B+-tree or AVL index with each outer
    tuple.

    The paper's two threads meet here: a keyed relation stored in a
    Section 2 access method can answer a join without any Section 3
    machinery — each outer tuple costs one [O(log n)] descent.  That wins
    when the outer is far smaller than the indexed inner (the per-probe
    [C'·comp] beats re-reading the inner); the hash algorithms win
    otherwise, which is why Section 3 never bothers with it for
    [|R| ~ |S|].

    The indexed side must have unique keys (both tree indexes replace on
    duplicate insert). *)

type index = Btree_ix of Mmdb_index.Btree.t | Avl_ix of Mmdb_index.Avl.t

val join : index -> Mmdb_storage.Relation.t -> Join_common.emit -> int
(** [join ix outer emit] emits [(indexed_tuple, outer_tuple)] for every
    outer tuple whose key hits the index.  The outer scan is free (first
    read); each probe charges the index's descent comparisons.
    @raise Invalid_argument on key-width mismatch. *)
