module S = Mmdb_storage

let passes ~mem_pages ~fudge ~r_pages =
  max 1
    (int_of_float
       (Float.ceil (float_of_int r_pages *. fudge /. float_of_int mem_pages)))

let join ~mem_pages ~fudge ?(seed = 0x51) r s emit =
  if mem_pages <= 0 then invalid_arg "Simple_hash.join: mem_pages <= 0";
  let r_schema = S.Relation.schema r and s_schema = S.Relation.schema s in
  Join_common.check_joinable r_schema s_schema;
  let env = S.Relation.env r in
  let disk = S.Relation.disk r in
  let hash_r = Hash_fn.create ~env ~schema:r_schema ~seed in
  let hash_s = Hash_fn.create ~env ~schema:s_schema ~seed in
  let table =
    Hash_table.create ~env ~schema:r_schema
      ~tuples_per_page:(S.Relation.tuples_per_page r)
  in
  (* Fraction of the original hash domain absorbed per pass: |M|/F pages
     of the original R. *)
  let frac =
    Float.min 1.0
      (float_of_int mem_pages /. fudge
      /. float_of_int (max 1 (S.Relation.npages r)))
  in
  let count = ref 0 in
  let pass_no = ref 0 in
  let lo = ref 0.0 in
  let r_rest = ref r and s_rest = ref s in
  let continue = ref true in
  while !continue do
    let first_pass = !pass_no = 0 in
    let window_hi = if !lo +. frac >= 1.0 -. 1e-12 then 1.0 else !lo +. frac in
    let in_window u = u >= !lo && u < window_hi in
    let scan rel f =
      if first_pass then S.Relation.iter_tuples_nocharge rel f
      else S.Relation.iter_tuples ~mode:S.Disk.Seq rel f
    in
    (* Step 1: slice R into the table; pass over the rest. *)
    Hash_table.clear table;
    let next_r =
      S.Relation.create ~disk
        ~name:(Printf.sprintf "%s.passed%d" (S.Relation.name r) !pass_no)
        ~schema:r_schema
    in
    scan !r_rest (fun tuple ->
        let u = Hash_fn.uniform hash_r tuple in
        if in_window u then Hash_table.insert table tuple
        else begin
          S.Env.charge_move env;
          S.Relation.append next_r tuple
        end);
    S.Relation.seal next_r;
    (* Step 2: probe with the matching slice of S; pass over the rest. *)
    let next_s =
      S.Relation.create ~disk
        ~name:(Printf.sprintf "%s.passed%d" (S.Relation.name s) !pass_no)
        ~schema:s_schema
    in
    scan !s_rest (fun tuple ->
        let u = Hash_fn.uniform hash_s tuple in
        if in_window u then
          Hash_table.probe table ~probe_schema:s_schema tuple (fun r_tup ->
              incr count;
              emit r_tup tuple)
        else begin
          S.Env.charge_move env;
          S.Relation.append next_s tuple
        end);
    S.Relation.seal next_s;
    (* Step 3: recurse on the passed-over files. *)
    if not first_pass then begin
      S.Relation.free_pages !r_rest;
      S.Relation.free_pages !s_rest
    end;
    if S.Relation.ntuples next_r = 0 then begin
      S.Relation.free_pages next_r;
      S.Relation.free_pages next_s;
      continue := false
    end
    else begin
      r_rest := next_r;
      s_rest := next_s;
      lo := window_hi;
      incr pass_no;
      (* The final window reaches 1.0, so the passed-over set is always
         empty by then: tuples can never be left behind. *)
      assert (!lo < 1.0)
    end
  done;
  Hash_table.clear table;
  !count
