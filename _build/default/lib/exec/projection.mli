(** Duplicate-eliminating projection (Section 3.9).

    "This same hybrid-hash algorithm appears to be the algorithm of choice
    for the projection operator as projection with duplicate elimination
    is very similar in nature to the aggregate function operation (in
    projection we are grouping identical tuples)."  Tuples are projected
    to the requested columns, partitioned by a hash of the {e whole}
    projected tuple when memory is short, and deduplicated per
    partition. *)

val project_schema : Mmdb_storage.Schema.t -> cols:string list ->
  Mmdb_storage.Schema.t
(** Schema of the projection, keyed on the first projected column.
    @raise Invalid_argument on an empty/unknown column list. *)

val projector : Mmdb_storage.Schema.t -> cols:string list ->
  Mmdb_storage.Schema.t -> bytes -> bytes
(** [projector schema ~cols out_schema] is the byte-level row projector
    matching {!project_schema} (shared with {!Division}). *)

val distinct : mem_pages:int -> fudge:float -> ?seed:int ->
  cols:string list -> Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t
(** [distinct ~mem_pages ~fudge ~cols rel] materialises the
    duplicate-free projection.  Charges: one [move] per input tuple (the
    projection), one [hash] per tuple, one [comp] per dedup-table lookup,
    partition I/O when spilling, charged writes of the result. *)

val sort_distinct : mem_pages:int -> cols:string list ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t
(** The sort-based baseline: project, externally sort on the first
    projected column, and drop duplicates within each equal-key run in a
    final scan.  Same result as {!distinct}; the cost comparison is
    experiment E9's point. *)
