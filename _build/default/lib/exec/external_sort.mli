(** Run merging and full external sort (Section 3.4, step 2).

    Merging allocates one buffer page per run (so the number of runs must
    not exceed [mem_pages]); run pages are read with random I/O (runs
    interleave on disk) and every selection-tree step charges
    [comp + swap]. *)

type cursor
(** A pull-based stream of tuples in ascending key order. *)

val cursor_of_runs : schema:Mmdb_storage.Schema.t ->
  Mmdb_storage.Relation.t list -> cursor
(** [cursor_of_runs ~schema runs] merges sorted runs into one ascending
    stream.  Page reads are charged as random I/O when there is more than
    one run (interleaved access), sequential otherwise. *)

val peek : cursor -> bytes option
(** Next tuple without consuming it. *)

val next : cursor -> bytes option
(** Consume and return the next tuple. *)

val reduce_runs : mem_pages:int -> limit:int ->
  Mmdb_storage.Relation.t list -> Mmdb_storage.Relation.t list
(** [reduce_runs ~mem_pages ~limit runs] merges groups of up to
    [mem_pages] runs into longer runs (charged intermediate I/O) until at
    most [limit] remain.  Identity when already within [limit].  This is
    the ">2 passes" case the paper's [√(|S|·F) <= |M|] assumption rules
    out; the library still handles it. *)

val sort : mem_pages:int -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t
(** [sort ~mem_pages rel] materialises a sorted copy of [rel]
    (runs + merge passes + charged sequential writes of the result).  Run
    pages are freed before returning. *)

val check_run_count : mem_pages:int -> Mmdb_storage.Relation.t list -> unit
(** @raise Invalid_argument when more runs than buffer pages (exposed for
    tests of the paper's assumption). *)
