(** Seeded, charged key hashing.

    All hash algorithms of Section 3 share one hash function [h] between R
    and S so their partitions are compatible (Section 3.3); recursive
    overflow handling needs a {e different} function per level, hence the
    seed.  Every evaluation charges one [hash] to the environment. *)

type t

val create : env:Mmdb_storage.Env.t -> schema:Mmdb_storage.Schema.t ->
  seed:int -> t
(** A hash function over the schema's key field. *)

val hash : t -> bytes -> int
(** [hash t tuple] is a non-negative hash of [tuple]'s key field; charges
    one [hash] operation. *)

val uniform : t -> bytes -> float
(** [uniform t tuple] maps the hash to [\[0, 1)] — used for proportional
    partition splitting (hybrid's [q] split).  Charges one [hash]. *)
