module S = Mmdb_storage
module I = Mmdb_index

type index = Btree_ix of I.Btree.t | Avl_ix of I.Avl.t

let index_schema = function
  | Btree_ix ix -> I.Btree.schema ix
  | Avl_ix ix -> I.Avl.schema ix

let search ix key =
  match ix with
  | Btree_ix t -> I.Btree.search t key
  | Avl_ix t -> I.Avl.search t key

let join ix outer emit =
  let inner_schema = index_schema ix in
  let outer_schema = S.Relation.schema outer in
  if S.Schema.key_width inner_schema <> S.Schema.key_width outer_schema then
    invalid_arg "Index_join: key widths differ";
  let count = ref 0 in
  S.Relation.iter_tuples_nocharge outer (fun o_tup ->
      let key = S.Tuple.key_bytes outer_schema o_tup in
      match search ix key with
      | Some i_tup ->
        incr count;
        emit i_tup o_tup
      | None -> ());
  !count
