(** Hybrid hash join (Section 3.7) — the paper's new algorithm and the
    winner of Figure 1 over most of the memory range.

    Memory holds [B] one-page output buffers plus a hash table over the
    in-memory partition R0 (a fraction [q] of R); only the remaining
    [1 − q] of both relations touches disk.  With one output buffer
    ([|M| > |R|·F/2]) the partition writes are sequential — the source of
    Figure 1's discontinuity at 0.5.  Partitions whose hash table would
    overflow memory are joined by recursing with a fresh hash function
    (the overflow remedy of Section 3.3). *)

val partitions : mem_pages:int -> fudge:float -> r_pages:int -> int
(** [B = max(0, ⌈(|R|·F − |M|) / (|M| − 1)⌉)]. *)

val q_fraction : mem_pages:int -> fudge:float -> r_pages:int -> float
(** [q = ((|M| − B)/F) / |R|], clamped to [\[0, 1\]]. *)

val join : mem_pages:int -> fudge:float -> ?seed:int ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Join_common.emit -> int
(** [join ~mem_pages ~fudge r s emit] returns the emitted-pair count.
    @raise Invalid_argument on key-width mismatch or [mem_pages <= 1]. *)
