(** GRACE hash join (Section 3.6).

    Phase 1 partitions both relations into [|M|] compatible sets with one
    output buffer page each (writes are random I/O); phase 2 joins each
    pair (R_i, S_i) by building an in-memory hash table over R_i and
    probing it with S_i.  Following the paper, hashing replaces the
    original proposal's hardware sorter in phase 2 "to provide a fair
    comparison". *)

val join : mem_pages:int -> fudge:float -> ?seed:int ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Join_common.emit -> int
(** [join ~mem_pages ~fudge r s emit] returns the emitted-pair count.
    @raise Invalid_argument on key-width mismatch or [mem_pages <= 0]. *)
