(** Sort-merge join (Section 3.4).

    Step 1 produces runs of both relations by replacement selection; the
    paper's assumption [√(|S|·F) <= |M|] guarantees all runs of both
    relations merge at once (one buffer page per run).  Step 2 merges the
    two run sets concurrently, emitting matching pairs; equal-key groups
    are buffered in memory (the paper's formula "holds only if a tuple
    from R does not join with more than a page of tuples from S" — we
    handle arbitrary groups but charge nothing extra for the buffering). *)

val join : mem_pages:int -> fudge:float -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t -> Join_common.emit -> int
(** [join ~mem_pages ~fudge r s emit] — returns the number of emitted
    pairs.  Temporary run pages are freed before returning.
    @raise Invalid_argument if the combined run count exceeds [mem_pages]
    or key widths differ. *)
