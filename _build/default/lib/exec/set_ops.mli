(** Set-semantics union, intersection and difference by hashing.

    Section 3.9 argues hash algorithms carry over to "other relational
    operations"; these operators follow the same pattern as the
    hybrid-hash projection: tuples are partitioned by a hash of the whole
    tuple when memory is short, then each compatible partition pair is
    resolved with an in-memory table.  Results are duplicate-free.

    Inputs must be byte-compatible: equal tuple widths (column names may
    differ; the left schema names the result). *)

val union : mem_pages:int -> fudge:float -> ?seed:int ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t
(** Distinct tuples present in either input. *)

val intersection : mem_pages:int -> fudge:float -> ?seed:int ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t
(** Distinct tuples present in both inputs. *)

val difference : mem_pages:int -> fudge:float -> ?seed:int ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t
(** Distinct tuples of the left input absent from the right. *)
