(** In-memory hash table of tuples keyed by the key field.

    The build side of every hash join.  Tracks its size in "data pages" so
    callers can enforce the paper's constraint that a table over [X] pages
    of tuples needs [X·F] pages of memory.  Inserting charges one [move]
    (the tuple moves into the table); probing charges one [comp] per
    candidate examined — together these realise the paper's
    [||R||·move + ||S||·F·comp] terms. *)

type t

val create : env:Mmdb_storage.Env.t -> schema:Mmdb_storage.Schema.t ->
  tuples_per_page:int -> t

val insert : t -> bytes -> unit
(** Add a tuple (duplicates allowed — joins are bags). *)

val length : t -> int
(** Tuples stored. *)

val data_pages : t -> int
(** [⌈length / tuples_per_page⌉]: pages of raw tuple data held. *)

val memory_pages : t -> fudge:float -> int
(** [⌈data_pages · F⌉]: memory the table occupies under the paper's fudge
    factor. *)

val probe : t -> probe_schema:Mmdb_storage.Schema.t -> bytes ->
  (bytes -> unit) -> unit
(** [probe t ~probe_schema s_tuple f] calls [f r_tuple] for every stored
    tuple whose key equals [s_tuple]'s key (under [probe_schema]'s key
    field; widths must match).  Charges one [comp] per candidate in the
    bucket. *)

val iter : t -> (bytes -> unit) -> unit

val clear : t -> unit
