lib/exec/joiner.mli: Join_common Mmdb_storage Op_stats
