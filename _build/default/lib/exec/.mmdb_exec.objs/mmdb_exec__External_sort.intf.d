lib/exec/external_sort.mli: Mmdb_storage
