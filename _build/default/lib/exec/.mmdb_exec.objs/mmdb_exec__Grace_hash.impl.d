lib/exec/grace_hash.ml: Array Float Hash_fn Hash_table Join_common Mmdb_storage Partition
