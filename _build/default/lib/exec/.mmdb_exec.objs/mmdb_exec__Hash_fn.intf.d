lib/exec/hash_fn.mli: Mmdb_storage
