lib/exec/set_ops.ml: Array Bytes Hashtbl Hybrid_hash List Mmdb_storage Printf
