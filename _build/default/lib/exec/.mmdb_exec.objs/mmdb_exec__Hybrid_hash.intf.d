lib/exec/hybrid_hash.mli: Join_common Mmdb_storage
