lib/exec/set_ops.mli: Mmdb_storage
