lib/exec/run_gen.ml: Int List Mmdb_storage Mmdb_util Printf
