lib/exec/sort_merge.mli: Join_common Mmdb_storage
