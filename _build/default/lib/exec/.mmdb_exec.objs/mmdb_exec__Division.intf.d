lib/exec/division.mli: Mmdb_storage
