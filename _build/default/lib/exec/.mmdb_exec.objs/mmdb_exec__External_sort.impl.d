lib/exec/external_sort.ml: Array List Mmdb_storage Mmdb_util Printf Run_gen
