lib/exec/aggregate.mli: Mmdb_storage
