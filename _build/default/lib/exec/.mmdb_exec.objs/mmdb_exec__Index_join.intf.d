lib/exec/index_join.mli: Join_common Mmdb_index Mmdb_storage
