lib/exec/join_common.ml: Bytes Int List Mmdb_storage
