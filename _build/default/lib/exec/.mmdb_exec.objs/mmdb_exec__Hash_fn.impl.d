lib/exec/hash_fn.ml: Int64 Mmdb_storage
