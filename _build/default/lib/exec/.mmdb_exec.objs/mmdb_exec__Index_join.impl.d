lib/exec/index_join.ml: Mmdb_index Mmdb_storage
