lib/exec/aggregate.ml: Array Bytes External_sort Hash_fn Hashtbl Hybrid_hash List Mmdb_storage Partition String
