lib/exec/partition.mli: Hash_fn Mmdb_storage
