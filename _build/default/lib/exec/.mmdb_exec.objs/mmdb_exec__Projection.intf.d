lib/exec/projection.mli: Mmdb_storage
