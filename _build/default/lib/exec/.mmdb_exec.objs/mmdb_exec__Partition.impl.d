lib/exec/partition.ml: Array Float Hash_fn List Mmdb_storage Printf
