lib/exec/grace_hash.mli: Join_common Mmdb_storage
