lib/exec/hash_table.ml: Bytes Float Hashtbl List Mmdb_storage
