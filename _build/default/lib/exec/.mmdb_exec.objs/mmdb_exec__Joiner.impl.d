lib/exec/joiner.ml: Grace_hash Hybrid_hash Mmdb_storage Nested_loop Op_stats Simple_hash Sort_merge
