lib/exec/nested_loop.mli: Join_common Mmdb_storage
