lib/exec/hash_table.mli: Mmdb_storage
