lib/exec/division.ml: Array Bytes Hashtbl Hybrid_hash List Mmdb_storage Printf Projection
