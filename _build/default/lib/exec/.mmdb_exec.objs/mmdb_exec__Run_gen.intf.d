lib/exec/run_gen.mli: Mmdb_storage
