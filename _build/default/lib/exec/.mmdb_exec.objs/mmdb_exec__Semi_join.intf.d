lib/exec/semi_join.mli: Mmdb_storage
