lib/exec/projection.ml: Array Bytes External_sort Float Hashtbl Hybrid_hash List Mmdb_storage Printf
