lib/exec/sort_merge.ml: Array External_sort Join_common List Mmdb_storage Run_gen
