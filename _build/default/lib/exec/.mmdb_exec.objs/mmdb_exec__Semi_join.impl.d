lib/exec/semi_join.ml: Bytes Hashtbl Join_common Mmdb_storage
