lib/exec/join_common.mli: Mmdb_storage
