lib/exec/op_stats.ml: Format Mmdb_storage
