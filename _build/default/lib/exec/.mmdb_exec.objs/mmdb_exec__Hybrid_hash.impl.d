lib/exec/hybrid_hash.ml: Array Float Hash_fn Hash_table Join_common List Mmdb_storage Partition
