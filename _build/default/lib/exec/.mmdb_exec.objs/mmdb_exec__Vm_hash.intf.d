lib/exec/vm_hash.mli: Join_common Mmdb_storage
