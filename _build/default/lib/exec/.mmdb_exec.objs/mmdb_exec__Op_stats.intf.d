lib/exec/op_stats.mli: Format Mmdb_storage
