lib/exec/vm_hash.ml: Hash_fn Hash_table Join_common Mmdb_storage Mmdb_util
