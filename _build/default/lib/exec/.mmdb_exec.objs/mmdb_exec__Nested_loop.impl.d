lib/exec/nested_loop.ml: Join_common Mmdb_storage
