lib/exec/simple_hash.ml: Float Hash_fn Hash_table Join_common Mmdb_storage Printf
