lib/exec/simple_hash.mli: Join_common Mmdb_storage
