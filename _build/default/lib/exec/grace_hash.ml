module S = Mmdb_storage

let join ~mem_pages ~fudge ?(seed = 0x6ace) r s emit =
  if mem_pages <= 0 then invalid_arg "Grace_hash.join: mem_pages <= 0";
  let r_schema = S.Relation.schema r and s_schema = S.Relation.schema s in
  Join_common.check_joinable r_schema s_schema;
  let env = S.Relation.env r in
  let hash_r = Hash_fn.create ~env ~schema:r_schema ~seed in
  let hash_s = Hash_fn.create ~env ~schema:s_schema ~seed in
  (* The paper partitions into |M| sets (one output buffer per set).  We
     cap the count at what phase 2 actually needs — enough sets that each
     R_i's hash table fits in memory, with 2x slack for skew — so a huge
     |M| does not shatter R into thousands of near-empty pages the cost
     model never charges for. *)
  let needed =
    let rf = float_of_int (S.Relation.npages r) *. fudge in
    int_of_float (Float.ceil (2.0 *. rf *. fudge /. float_of_int mem_pages))
  in
  let nbuckets = max 1 (min mem_pages (max needed 1)) in
  let rb =
    Partition.split ~scan:Partition.Free ~nbuckets ~hash:hash_r
      ~write_mode:S.Disk.Rand r
  in
  let sb =
    Partition.split ~scan:Partition.Free ~nbuckets ~hash:hash_s
      ~write_mode:S.Disk.Rand s
  in
  let table =
    Hash_table.create ~env ~schema:r_schema
      ~tuples_per_page:(S.Relation.tuples_per_page r)
  in
  let count = ref 0 in
  for i = 0 to nbuckets - 1 do
    if S.Relation.ntuples rb.(i) > 0 || S.Relation.ntuples sb.(i) > 0 then begin
      Hash_table.clear table;
      (* Build: read R_i back (sequential) and hash every tuple into the
         table. *)
      Partition.iter_bucket rb.(i) (fun tuple ->
          ignore (Hash_fn.hash hash_r tuple);
          Hash_table.insert table tuple);
      (* Probe with S_i. *)
      Partition.iter_bucket sb.(i) (fun tuple ->
          ignore (Hash_fn.hash hash_s tuple);
          Hash_table.probe table ~probe_schema:s_schema tuple (fun r_tup ->
              incr count;
              emit r_tup tuple))
    end
  done;
  Hash_table.clear table;
  Partition.free rb;
  Partition.free sb;
  !count
