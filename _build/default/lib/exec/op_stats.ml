module S = Mmdb_storage

type t = {
  output_tuples : int;
  seconds : float;
  counters : S.Counters.t;
}

let measure env f =
  let t0 = S.Env.elapsed env in
  let before = S.Counters.snapshot env.S.Env.counters in
  let output_tuples = f () in
  {
    output_tuples;
    seconds = S.Env.elapsed env -. t0;
    counters = S.Counters.diff ~after:env.S.Env.counters ~before;
  }

let pp ppf t =
  Format.fprintf ppf "out=%d time=%.3fs [%a]" t.output_tuples t.seconds
    S.Counters.pp t.counters
