(** Simple (multipass) hash join (Section 3.5).

    Pass 1 builds an in-memory hash table over the slice of R whose hash
    falls in a window sized to [|M|/F] pages, probes it with the matching
    slice of S, and writes both relations' passed-over tuples to disk;
    later passes repeat on the passed-over files until R is exhausted.
    [A = ⌈|R|·F / |M|⌉] passes result. *)

val join : mem_pages:int -> fudge:float -> ?seed:int ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Join_common.emit -> int
(** [join ~mem_pages ~fudge r s emit] returns the emitted-pair count.
    Temporary files are freed.  @raise Invalid_argument on key-width
    mismatch or [mem_pages <= 0]. *)

val passes : mem_pages:int -> fudge:float -> r_pages:int -> int
(** Predicted pass count [A] (exposed for tests and experiment labels). *)
