module S = Mmdb_storage

type algorithm =
  | Sort_merge_join
  | Simple_hash_join
  | Grace_hash_join
  | Hybrid_hash_join
  | Nested_loop_join

let all =
  [ Sort_merge_join; Simple_hash_join; Grace_hash_join; Hybrid_hash_join ]

let name = function
  | Sort_merge_join -> "sort-merge"
  | Simple_hash_join -> "simple"
  | Grace_hash_join -> "grace"
  | Hybrid_hash_join -> "hybrid"
  | Nested_loop_join -> "nested-loop"

let of_name = function
  | "sort-merge" -> Sort_merge_join
  | "simple" -> Simple_hash_join
  | "grace" -> Grace_hash_join
  | "hybrid" -> Hybrid_hash_join
  | "nested-loop" -> Nested_loop_join
  | s -> invalid_arg ("Joiner.of_name: unknown algorithm " ^ s)

let run algo ~mem_pages ~fudge r s emit =
  match algo with
  | Sort_merge_join -> Sort_merge.join ~mem_pages ~fudge r s emit
  | Simple_hash_join -> Simple_hash.join ~mem_pages ~fudge r s emit
  | Grace_hash_join -> Grace_hash.join ~mem_pages ~fudge r s emit
  | Hybrid_hash_join -> Hybrid_hash.join ~mem_pages ~fudge r s emit
  | Nested_loop_join -> Nested_loop.join r s emit

let run_measured algo ~mem_pages ~fudge r s =
  let env = S.Relation.env r in
  Op_stats.measure env (fun () ->
      run algo ~mem_pages ~fudge r s (fun _ _ -> ()))
