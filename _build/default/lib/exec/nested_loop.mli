(** Naive nested-loop join — the correctness oracle for the four Section 3
    algorithms and the planner's fallback for tiny inputs.

    Charges one [comp] per tuple pair examined and sequential I/O for each
    rescan of the inner relation (the outer's initial read is free, as
    everywhere). *)

val join : Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Join_common.emit -> int
(** [join r s emit] emits every matching pair and returns the match
    count. *)

val join_uncharged : Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Join_common.emit -> int
(** Same result, no charges — for use as a test oracle without polluting
    an experiment's counters. *)
