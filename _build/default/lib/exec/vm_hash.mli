(** Hash join under virtual memory — Section 6 names "the effect of
    virtual memory on query processing algorithms" as future research;
    this operator answers it for the join.

    Instead of partitioning when the build table exceeds [|M|] (the
    Section 3 algorithms' explicit strategy), the table is built over the
    {e whole} of R and every table access may page-fault: an access to a
    table of [T] pages with [|M|] resident faults with probability
    [max(0, 1 − |M|/T)], charging one random I/O (the classic
    thrashing model; cf. the paged-binary-tree analysis of Section 2).
    Faults are drawn from a seeded RNG so runs stay deterministic.

    The result is identical to the other joins; only the charged cost
    differs.  The ablation bench shows explicit partitioning beats VM
    paging once R outgrows memory — the implicit answer the paper's
    algorithm choice presumes. *)

val join : mem_pages:int -> fudge:float -> ?seed:int ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Join_common.emit -> int
(** [join ~mem_pages ~fudge r s emit] builds the full hash table over R
    under VM paging and probes it with S.  Returns the match count. *)
