(** Uniform dispatch over the four Section 3 join algorithms (plus the
    nested-loop oracle) — the interface the planner and the benchmark
    harness program against. *)

type algorithm =
  | Sort_merge_join
  | Simple_hash_join
  | Grace_hash_join
  | Hybrid_hash_join
  | Nested_loop_join

val all : algorithm list
(** The four paper algorithms, in Figure 1 order (excludes nested loop). *)

val name : algorithm -> string

val of_name : string -> algorithm
(** Inverse of {!name}.  @raise Invalid_argument on unknown names. *)

val run : algorithm -> mem_pages:int -> fudge:float ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t ->
  Join_common.emit -> int
(** Execute the join, returning the match count. *)

val run_measured : algorithm -> mem_pages:int -> fudge:float ->
  Mmdb_storage.Relation.t -> Mmdb_storage.Relation.t -> Op_stats.t
(** Execute with output discarded, capturing time/counter deltas. *)
