(** Hash partitioning of a relation (Section 3.3).

    Both relations of a join are split with the {e same} hash function so
    the partitions are compatible: R_i need only be joined with S_i.
    Tuples moving to an output buffer charge [move]; buffer spills charge
    the chosen write mode; re-reading a previously spilled input charges
    its scan mode. *)

type scan_mode =
  | Free  (** first read of a base relation — excluded by the paper *)
  | Charged of Mmdb_storage.Disk.io_mode
      (** re-reading temporary data written by an earlier phase *)

val split : scan:scan_mode -> nbuckets:int -> hash:Hash_fn.t ->
  write_mode:Mmdb_storage.Disk.io_mode -> Mmdb_storage.Relation.t ->
  Mmdb_storage.Relation.t array
(** [split ~scan ~nbuckets ~hash ~write_mode rel] distributes tuples into
    [nbuckets] sealed temporary relations by [hash mod nbuckets].
    @raise Invalid_argument if [nbuckets <= 0]. *)

val split_fraction : scan:scan_mode -> q:float -> nbuckets:int ->
  hash:Hash_fn.t -> write_mode:Mmdb_storage.Disk.io_mode ->
  Mmdb_storage.Relation.t -> bytes list * Mmdb_storage.Relation.t array
(** [split_fraction ~scan ~q ~nbuckets ...] — the hybrid split: tuples
    whose uniformised hash falls below [q] stay in memory (returned list,
    in scan order, uncharged — the caller's hash-table insert charges the
    move); the rest are moved into [nbuckets] disk partitions.  With
    [q = 0.] this degenerates to {!split}. *)

val iter_bucket : Mmdb_storage.Relation.t -> (bytes -> unit) -> unit
(** Charged sequential scan of a partition during the join phase. *)

val free : Mmdb_storage.Relation.t array -> unit
(** Release all partitions' pages. *)
