(** Aggregate functions with grouping (Section 3.9).

    "For aggregate functions in which related tuples must be grouped
    together ... if there is enough memory to hold the result relation,
    the fastest algorithm will be a one pass hashing algorithm in which
    each incoming tuple is hashed on the grouping attribute.  If there is
    not enough memory ... a variant of the hybrid-hash algorithm appears
    fastest."  Both variants are implemented; grouping is on the input
    schema's key column. *)

type spec =
  | Count
  | Sum of string  (** column name *)
  | Min of string
  | Max of string
  | Avg of string  (** integer average, rounded toward zero *)

val result_schema : Mmdb_storage.Schema.t -> spec list -> Mmdb_storage.Schema.t
(** Group column (a copy of the input key column) followed by one 8-byte
    integer column per aggregate, named ["count"], ["sum_c"], ["min_c"],
    ["max_c"], ["avg_c"]. *)

val one_pass : Mmdb_storage.Relation.t -> spec list -> Mmdb_storage.Relation.t
(** One-pass hash aggregation: every input tuple is hashed on the grouping
    attribute into an in-memory table of groups; assumes the result fits
    in memory.  Input scan is free (first read); result writes are
    charged. *)

val hybrid : mem_pages:int -> fudge:float -> ?seed:int ->
  Mmdb_storage.Relation.t -> spec list -> Mmdb_storage.Relation.t
(** Hybrid-hash aggregation for results larger than memory: partition the
    input by group-key hash into partitions whose group tables fit, then
    aggregate each partition in one pass.  Degenerates to {!one_pass} when
    everything fits. *)

val sort_based : mem_pages:int -> Mmdb_storage.Relation.t -> spec list ->
  Mmdb_storage.Relation.t
(** The disk-era baseline the paper's hash recommendation displaces:
    externally sort on the grouping attribute, then aggregate adjacent
    runs of equal keys in one scan.  Pays the full
    [n·log n·(comp+swap)] sort plus run I/O. *)

val group_count : Mmdb_storage.Relation.t -> int
(** Distinct key values (uncharged; sizing helper for planners/tests). *)
