lib/core/txn_db.mli: Mmdb_recovery
