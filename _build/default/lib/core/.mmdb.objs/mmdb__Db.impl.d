lib/core/db.ml: Array Buffer Bytes Char Format Hashtbl List Mmdb_index Mmdb_planner Mmdb_storage Option Printf String
