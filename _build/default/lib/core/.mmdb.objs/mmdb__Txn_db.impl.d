lib/core/txn_db.ml: Float List Mmdb_recovery Mmdb_storage
