lib/core/db.mli: Mmdb_planner Mmdb_storage
