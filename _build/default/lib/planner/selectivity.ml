module S = Mmdb_storage

let default_selectivity = 1.0 /. 3.0

let predicate _catalog ~table_hint (pred : Algebra.predicate) =
  match table_hint with
  | None -> default_selectivity
  | Some (cs : Catalog.column_stats) -> (
    let nd = max 1 cs.Catalog.ndistinct in
    match pred.Algebra.op with
    | Algebra.Eq -> 1.0 /. float_of_int nd
    | Algebra.Ne -> 1.0 -. (1.0 /. float_of_int nd)
    | Algebra.Lt | Algebra.Le | Algebra.Gt | Algebra.Ge -> (
      let below v =
        (* Fraction of values below v: equi-depth histogram when present,
           min/max interpolation otherwise. *)
        match cs.Catalog.quantiles with
        | Some q when Array.length q > 0 ->
          let k = Array.length q in
          let pos = ref 0 in
          while !pos < k && q.(!pos) < v do
            incr pos
          done;
          float_of_int !pos /. float_of_int (k + 1)
        | Some _ | None -> (
          match (cs.Catalog.min_int, cs.Catalog.max_int) with
          | Some lo, Some hi when hi > lo ->
            Float.min 1.0
              (Float.max 0.0 (float_of_int (v - lo) /. float_of_int (hi - lo)))
          | _ -> default_selectivity)
      in
      match pred.Algebra.value with
      | S.Tuple.VInt v -> (
        let frac = below v in
        match pred.Algebra.op with
        | Algebra.Lt | Algebra.Le -> frac
        | Algebra.Gt | Algebra.Ge -> 1.0 -. frac
        | Algebra.Eq | Algebra.Ne -> assert false)
      | S.Tuple.VStr _ -> default_selectivity))

(* Column stats for the column named in an expression, when it can be
   traced to a base relation. *)
let rec find_column_stats catalog expr column =
  match expr with
  | Algebra.Scan name -> (
    match Catalog.column_stats catalog ~table:name ~column with
    | cs -> Some cs
    | exception Not_found -> None)
  | Algebra.Select { input; _ } -> find_column_stats catalog input column
  | Algebra.Project { input; columns; _ } ->
    if List.mem column columns then find_column_stats catalog input column
    else None
  | Algebra.Join { left; right; _ } -> (
    match find_column_stats catalog left column with
    | Some cs -> Some cs
    | None -> find_column_stats catalog right column)
  | Algebra.Order_by { input; _ } -> find_column_stats catalog input column
  | Algebra.Set_op { left; _ } -> find_column_stats catalog left column
  | Algebra.Aggregate _ -> None

let rec estimate catalog expr =
  match expr with
  | Algebra.Scan name -> (
    match Catalog.stats catalog name with
    | ts -> float_of_int ts.Catalog.ntuples
    | exception Not_found -> 1000.0)
  | Algebra.Select { input; pred } ->
    let hint = find_column_stats catalog input pred.Algebra.column in
    estimate catalog input *. predicate catalog ~table_hint:hint pred
  | Algebra.Project { input; columns; distinct } ->
    let base = estimate catalog input in
    if not distinct then base
    else begin
      (* Capped by the product of projected column cardinalities. *)
      let cap =
        List.fold_left
          (fun acc c ->
            match find_column_stats catalog input c with
            | Some cs -> acc *. float_of_int (max 1 cs.Catalog.ndistinct)
            | None -> acc *. base)
          1.0 columns
      in
      Float.min base cap
    end
  | Algebra.Join { left; right; left_key; right_key } ->
    let nl = estimate catalog left and nr = estimate catalog right in
    let dl =
      match find_column_stats catalog left left_key with
      | Some cs -> max 1 cs.Catalog.ndistinct
      | None -> 10
    in
    let dr =
      match find_column_stats catalog right right_key with
      | Some cs -> max 1 cs.Catalog.ndistinct
      | None -> 10
    in
    nl *. nr /. float_of_int (max dl dr)
  | Algebra.Aggregate { input; group_by; _ } -> (
    match find_column_stats catalog input group_by with
    | Some cs -> float_of_int (max 1 cs.Catalog.ndistinct)
    | None -> Float.max 1.0 (estimate catalog input /. 10.0))
  | Algebra.Order_by { input; _ } -> estimate catalog input
  | Algebra.Set_op { op; left; right } -> (
    let nl = estimate catalog left and nr = estimate catalog right in
    match op with
    | Algebra.Union -> nl +. nr
    | Algebra.Intersect -> Float.min nl nr
    | Algebra.Except -> nl)

let estimated_pages catalog expr ~tuples_per_page =
  let tuples = estimate catalog expr in
  if tuples <= 0.0 then 0
  else max 1 (int_of_float (Float.ceil (tuples /. float_of_int tuples_per_page)))
