module S = Mmdb_storage

type column_stats = {
  ndistinct : int;
  min_int : int option;
  max_int : int option;
  quantiles : int array option;
}

let n_quantiles = 15

(* Equi-depth cut points of a (non-empty) unsorted value list. *)
let compute_quantiles values =
  let arr = Array.of_list values in
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 0 then None
  else
    Some
      (Array.init n_quantiles (fun i ->
           let rank = (i + 1) * n / (n_quantiles + 1) in
           arr.(min (n - 1) rank)))

type table_stats = {
  ntuples : int;
  npages : int;
  columns : (string * column_stats) list;
}

type entry = { rel : S.Relation.t; mutable tstats : table_stats }

type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 16

let compute_stats rel =
  let schema = S.Relation.schema rel in
  let cols = Array.of_list (S.Schema.columns schema) in
  let distinct = Array.map (fun _ -> Hashtbl.create 64) cols in
  let mins = Array.make (Array.length cols) None in
  let maxs = Array.make (Array.length cols) None in
  let values = Array.make (Array.length cols) [] in
  S.Relation.iter_tuples_nocharge rel (fun tuple ->
      Array.iteri
        (fun i (c : S.Schema.column) ->
          match c.S.Schema.ty with
          | S.Schema.Int ->
            let v = S.Tuple.get_int schema tuple i in
            Hashtbl.replace distinct.(i) (string_of_int v) ();
            mins.(i) <-
              (match mins.(i) with Some m -> Some (min m v) | None -> Some v);
            maxs.(i) <-
              (match maxs.(i) with Some m -> Some (max m v) | None -> Some v);
            values.(i) <- v :: values.(i)
          | S.Schema.Fixed_string ->
            Hashtbl.replace distinct.(i) (S.Tuple.get_str schema tuple i) ())
        cols);
  {
    ntuples = S.Relation.ntuples rel;
    npages = S.Relation.npages rel;
    columns =
      Array.to_list
        (Array.mapi
           (fun i (c : S.Schema.column) ->
             ( c.S.Schema.name,
               {
                 ndistinct = Hashtbl.length distinct.(i);
                 min_int = mins.(i);
                 max_int = maxs.(i);
                 quantiles =
                   (match values.(i) with
                   | [] -> None
                   | vs -> compute_quantiles vs);
               } ))
           cols);
  }

let register t rel =
  Hashtbl.replace t (S.Relation.name rel) { rel; tstats = compute_stats rel }

let find t name =
  match Hashtbl.find_opt t name with
  | Some e -> e.rel
  | None -> raise Not_found

let mem t name = Hashtbl.mem t name
let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t []

let stats t name =
  match Hashtbl.find_opt t name with
  | Some e -> e.tstats
  | None -> raise Not_found

let column_stats t ~table ~column =
  let ts = stats t table in
  match List.assoc_opt column ts.columns with
  | Some cs -> cs
  | None -> raise Not_found

let refresh t name =
  match Hashtbl.find_opt t name with
  | Some e -> e.tstats <- compute_stats e.rel
  | None -> raise Not_found

let remove t name = Hashtbl.remove t name
