(** Cardinality estimation in the Selinger tradition — the planner pushes
    the most selective operations toward the bottom of the tree
    (Section 4), so it needs output-size estimates. *)

val predicate : Catalog.t -> table_hint:Catalog.column_stats option ->
  Algebra.predicate -> float
(** Selectivity in [\[0, 1\]] of a predicate given the column's stats:
    equality 1/ndistinct; ranges interpolated on [min..max]; 1/3 fallback
    when stats are missing (Selinger's magic number). *)

val estimate : Catalog.t -> Algebra.expr -> float
(** Estimated output cardinality in tuples.  Joins use
    [|L|·|R| / max(dL, dR)]; distinct projection caps at the product of
    column cardinalities; aggregation outputs one tuple per group. *)

val estimated_pages : Catalog.t -> Algebra.expr -> tuples_per_page:int -> int
(** {!estimate} converted to pages (at least 1 for non-empty). *)
