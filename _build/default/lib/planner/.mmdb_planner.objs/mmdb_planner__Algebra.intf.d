lib/planner/algebra.mli: Format Mmdb_exec Mmdb_storage
