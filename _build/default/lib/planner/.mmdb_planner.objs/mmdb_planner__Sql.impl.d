lib/planner/sql.ml: Algebra List Mmdb_exec Mmdb_storage Printf String
