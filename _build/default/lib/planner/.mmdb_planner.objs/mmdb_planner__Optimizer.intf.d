lib/planner/optimizer.mli: Algebra Catalog Mmdb_exec Mmdb_storage
