lib/planner/executor.mli: Algebra Catalog Mmdb_storage Optimizer
