lib/planner/optimizer.ml: Algebra Buffer Catalog List Mmdb_exec Mmdb_model Mmdb_storage Printf Selectivity String
