lib/planner/algebra.ml: Format Int List Mmdb_exec Mmdb_storage Printf String
