lib/planner/catalog.mli: Mmdb_storage
