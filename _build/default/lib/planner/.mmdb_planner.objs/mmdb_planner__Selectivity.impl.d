lib/planner/selectivity.ml: Algebra Array Catalog Float List Mmdb_storage
