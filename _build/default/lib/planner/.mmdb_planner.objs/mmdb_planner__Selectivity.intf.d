lib/planner/selectivity.mli: Algebra Catalog
