lib/planner/executor.ml: Algebra Bytes Catalog List Mmdb_exec Mmdb_storage Optimizer Printf
