lib/planner/sql.mli: Algebra Mmdb_storage
