lib/planner/catalog.ml: Array Hashtbl List Mmdb_storage
