module C = Mmdb_storage.Cost

type workload = {
  r_pages : int;
  s_pages : int;
  r_tuples_per_page : int;
  s_tuples_per_page : int;
  cost : C.t;
}

let table2_workload =
  {
    r_pages = 10_000;
    s_pages = 10_000;
    r_tuples_per_page = 40;
    s_tuples_per_page = 40;
    cost = C.table2;
  }

let r_tuples w = w.r_pages * w.r_tuples_per_page
let s_tuples w = w.s_pages * w.s_tuples_per_page

let min_memory w =
  int_of_float (Float.ceil (sqrt (float_of_int w.s_pages *. w.cost.C.fudge)))

let validate w ~m =
  if w.r_pages > w.s_pages then
    invalid_arg "Join_model: requires |R| <= |S|";
  if m < min_memory w then
    invalid_arg
      (Printf.sprintf "Join_model: |M| = %d below sqrt(|S|*F) = %d" m
         (min_memory w))

let fi = float_of_int

(* log2 clamped below at 0 (a priority queue of <= 1 element is free). *)
let log2_pos x = if x <= 1.0 then 0.0 else Float.log2 x

let sort_merge w ~m =
  validate w ~m;
  let c = w.cost in
  let rr = fi (r_tuples w) and ss = fi (s_tuples w) in
  let mf = fi m in
  (* Tuples resident while forming runs with a priority queue (never more
     than the relation itself). *)
  let mr = Float.min (mf *. fi w.r_tuples_per_page) rr
  and ms = Float.min (mf *. fi w.s_tuples_per_page) ss in
  let run_formation =
    ((rr *. log2_pos mr) +. (ss *. log2_pos ms)) *. (c.C.comp +. c.C.swap)
  in
  let join_pass = (rr +. ss) *. c.C.comp in
  if mf >= fi w.s_pages *. c.C.fudge then
    (* Everything sorts in memory: no run I/O, no merge queue. *)
    run_formation +. join_pass
  else begin
    let io =
      (fi (w.r_pages + w.s_pages) *. c.C.io_seq)
      +. (fi (w.r_pages + w.s_pages) *. c.C.io_rand)
    in
    (* Runs average 2|M| pages; the final merge drives a selection tree
       over all runs of both relations. *)
    let nruns_r = fi w.r_pages *. c.C.fudge /. (2.0 *. mf) in
    let nruns_s = fi w.s_pages *. c.C.fudge /. (2.0 *. mf) in
    let merge_queue =
      ((rr *. log2_pos (nruns_r +. nruns_s))
      +. (ss *. log2_pos (nruns_r +. nruns_s)))
      *. (c.C.comp +. c.C.swap)
    in
    run_formation +. io +. merge_queue +. join_pass
  end

let simple_hash_passes w ~m =
  let a = Float.ceil (fi w.r_pages *. w.cost.C.fudge /. fi m) in
  max 1 (int_of_float a)

let simple_hash w ~m =
  validate w ~m;
  let c = w.cost in
  let rr = fi (r_tuples w) and ss = fi (s_tuples w) in
  let a = fi (simple_hash_passes w ~m) in
  let base = (rr *. (c.C.hash +. c.C.move)) +. (ss *. (c.C.hash +. (c.C.fudge *. c.C.comp))) in
  if a <= 1.0 then base
  else begin
    (* Pages of R absorbed per pass: |M|/F. *)
    let absorbed = fi m /. c.C.fudge in
    let tri = a *. (a -. 1.0) /. 2.0 in
    let passed_r_pages =
      Float.max 0.0 (((a -. 1.0) *. fi w.r_pages) -. (tri *. absorbed))
    in
    let passed_s_pages =
      Float.max 0.0
        (((a -. 1.0) *. fi w.s_pages)
        -. (tri *. absorbed *. (fi w.s_pages /. fi w.r_pages)))
    in
    let passed_r_tuples = passed_r_pages *. fi w.r_tuples_per_page in
    let passed_s_tuples = passed_s_pages *. fi w.s_tuples_per_page in
    base
    +. ((passed_r_tuples +. passed_s_tuples) *. (c.C.hash +. c.C.move))
    +. ((passed_r_pages +. passed_s_pages) *. 2.0 *. c.C.io_seq)
  end

(* Shared second-phase + partition-phase structure of GRACE and hybrid;
   [q] is the fraction of R (and S) joined without touching disk and
   [write_seq] selects IOseq for the partition-write when there is at most
   one output buffer. *)
let partitioned_hash_cost w ~q ~write_seq =
  let c = w.cost in
  let rr = fi (r_tuples w) and ss = fi (s_tuples w) in
  let pages = fi (w.r_pages + w.s_pages) in
  let write_io = if write_seq then c.C.io_seq else c.C.io_rand in
  (rr +. ss) *. c.C.hash (* partition both relations *)
  +. ((rr +. ss) *. (1.0 -. q) *. c.C.move) (* to output buffers *)
  +. (pages *. (1.0 -. q) *. write_io) (* write partitions *)
  +. ((rr +. ss) *. (1.0 -. q) *. c.C.hash) (* phase-2 build/probe hash *)
  +. (ss *. c.C.fudge *. c.C.comp) (* probe for each S tuple *)
  +. (rr *. c.C.move) (* move R tuples into hash tables *)
  +. (pages *. (1.0 -. q) *. c.C.io_seq) (* read partitions back *)

let grace_hash w ~m =
  validate w ~m;
  (* GRACE partitions everything regardless of memory size, with |M|
     output buffers -> random writes. *)
  partitioned_hash_cost w ~q:0.0 ~write_seq:false

let hybrid_partitions w ~m =
  let rf = fi w.r_pages *. w.cost.C.fudge in
  if rf <= fi m then 0
  else max 1 (int_of_float (Float.ceil ((rf -. fi m) /. (fi m -. 1.0))))

let hybrid_q w ~m =
  let b = hybrid_partitions w ~m in
  if b = 0 then 1.0
  else begin
    let r0_pages = fi (m - b) /. w.cost.C.fudge in
    Float.min 1.0 (Float.max 0.0 (r0_pages /. fi w.r_pages))
  end

let hybrid_hash w ~m =
  validate w ~m;
  let b = hybrid_partitions w ~m in
  let q = hybrid_q w ~m in
  partitioned_hash_cost w ~q ~write_seq:(b <= 1)

let all_four w ~m =
  [
    ("sort-merge", sort_merge w ~m);
    ("simple", simple_hash w ~m);
    ("grace", grace_hash w ~m);
    ("hybrid", hybrid_hash w ~m);
  ]
