lib/model/join_model.ml: Float Mmdb_storage Printf
