lib/model/recovery_model.ml:
