lib/model/join_model.mli: Mmdb_storage
