lib/model/access_model.ml: Float Format
