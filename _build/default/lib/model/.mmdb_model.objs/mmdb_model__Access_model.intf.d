lib/model/access_model.mli: Format
