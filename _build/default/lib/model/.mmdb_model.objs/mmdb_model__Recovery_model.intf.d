lib/model/recovery_model.mli:
