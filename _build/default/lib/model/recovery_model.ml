type t = {
  begin_end_bytes : int;
  old_values_bytes : int;
  new_values_bytes : int;
  log_page_bytes : int;
  page_write_time : float;
}

let gray_banking =
  {
    begin_end_bytes = 40;
    old_values_bytes = 180;
    new_values_bytes = 180;
    log_page_bytes = 4096;
    page_write_time = 10e-3;
  }

let log_bytes_per_txn t ~compressed =
  if compressed then t.begin_end_bytes + t.new_values_bytes
  else t.begin_end_bytes + t.old_values_bytes + t.new_values_bytes

let txns_per_page t ~compressed =
  max 1 (t.log_page_bytes / log_bytes_per_txn t ~compressed)

let conventional_tps t = 1.0 /. t.page_write_time

let group_commit_tps t =
  float_of_int (txns_per_page t ~compressed:false) /. t.page_write_time

let partitioned_tps t ~devices =
  if devices <= 0 then invalid_arg "Recovery_model.partitioned_tps: devices";
  float_of_int devices *. group_commit_tps t

let stable_memory_tps t ~devices ~compressed =
  if devices <= 0 then invalid_arg "Recovery_model.stable_memory_tps: devices";
  float_of_int (devices * txns_per_page t ~compressed) /. t.page_write_time

let log_compression_ratio t =
  float_of_int (log_bytes_per_txn t ~compressed:true)
  /. float_of_int (log_bytes_per_txn t ~compressed:false)
