type io_mode = Seq | Rand

type t = {
  env : Env.t;
  page_size : int;
  pages : (int, bytes) Hashtbl.t;
  mutable next_id : int;
}

let create ~env ~page_size =
  if page_size <= Page.header_size then
    invalid_arg "Disk.create: page_size too small";
  { env; page_size; pages = Hashtbl.create 1024; next_id = 0 }

let env t = t.env
let page_size t = t.page_size
let page_count t = Hashtbl.length t.pages

let alloc t =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.pages id (Page.create t.page_size);
  id

let find t pid =
  match Hashtbl.find_opt t.pages pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Disk: unknown page %d" pid)

let charge_read t mode =
  match mode with
  | Seq -> Env.charge_io_seq_read t.env
  | Rand -> Env.charge_io_rand_read t.env

let charge_write t mode =
  match mode with
  | Seq -> Env.charge_io_seq_write t.env
  | Rand -> Env.charge_io_rand_write t.env

let read t ~mode pid =
  charge_read t mode;
  Bytes.copy (find t pid)

let write t ~mode pid page =
  if Bytes.length page <> t.page_size then
    invalid_arg "Disk.write: page size mismatch";
  ignore (find t pid);
  charge_write t mode;
  Hashtbl.replace t.pages pid (Bytes.copy page)

let free t pid =
  ignore (find t pid);
  Hashtbl.remove t.pages pid

let read_nocharge t pid = Bytes.copy (find t pid)

let write_nocharge t pid page =
  if Bytes.length page <> t.page_size then
    invalid_arg "Disk.write_nocharge: page size mismatch";
  ignore (find t pid);
  Hashtbl.replace t.pages pid (Bytes.copy page)
