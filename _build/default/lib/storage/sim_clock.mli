(** Simulated wall clock.

    The repository never measures real elapsed time for the paper's
    experiments; operators advance this clock by the Table 2 cost of each
    primitive, exactly as the paper's analysis charges them.  This makes
    experiment output deterministic and hardware-independent. *)

type t

val create : unit -> t
(** A clock at time 0. *)

val now : t -> float
(** Current simulated time in seconds. *)

val advance : t -> float -> unit
(** [advance t dt] moves time forward by [dt] seconds.
    @raise Invalid_argument if [dt] is negative. *)

val advance_to : t -> float -> unit
(** [advance_to t at] moves time forward to absolute time [at]; no-op if
    [at] is in the past (useful for device-busy-until bookkeeping). *)

val reset : t -> unit
(** Rewind to time 0. *)
