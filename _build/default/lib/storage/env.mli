(** Instrumentation environment threaded through every storage and operator
    call: the cost model, the simulated clock, and the operation counters.

    Charging a primitive does two things at once — bumps the matching
    counter and advances the clock by the Table 2 constant — so counted
    operations and simulated time can never drift apart. *)

type t = {
  cost : Cost.t;
  clock : Sim_clock.t;
  counters : Counters.t;
}

val create : ?cost:Cost.t -> unit -> t
(** Fresh environment; [cost] defaults to {!Cost.table2}. *)

val charge_comp : t -> unit
(** One key comparison. *)

val charge_comps : t -> int -> unit
(** [charge_comps env n] charges [n] comparisons in one clock update. *)

val charge_hash : t -> unit
(** One key hash. *)

val charge_move : t -> unit
(** One tuple move. *)

val charge_swap : t -> unit
(** One tuple swap (priority-queue sift step, Section 3.4). *)

val charge_io_seq_read : t -> unit
val charge_io_seq_write : t -> unit
val charge_io_rand_read : t -> unit
val charge_io_rand_write : t -> unit

val elapsed : t -> float
(** Simulated seconds since creation (or last clock reset). *)

val reset : t -> unit
(** Reset clock and counters (cost model unchanged). *)
