(** Cost constants of the paper's machine model (Table 2).

    Every primitive the 1984 analysis charges for — key comparison, key
    hash, tuple move, tuple swap, sequential I/O, random I/O — has a time
    constant here, in seconds.  The executable operators charge these
    against a {!Sim_clock} through {!Env}; the analytic models in
    [Mmdb_model] consume the same record, so "measured" (simulated) and
    "predicted" numbers share one source of truth. *)

type t = {
  comp : float;  (** time to compare keys (s) *)
  hash : float;  (** time to hash a key (s) *)
  move : float;  (** time to move a tuple (s) *)
  swap : float;  (** time to swap two tuples (s) *)
  io_seq : float;  (** sequential I/O operation time (s) *)
  io_rand : float;  (** random I/O operation time (s) *)
  fudge : float;  (** universal "fudge" factor F of Section 3.2 *)
}

val table2 : t
(** The exact settings of the paper's Table 2: comp 3 µs, hash 9 µs, move
    20 µs, swap 60 µs, IOseq 10 ms, IOrand 25 ms, F 1.2. *)

val zero_io : t -> t
(** [zero_io c] is [c] with free I/O — isolates CPU cost in ablations. *)

val pp : Format.formatter -> t -> unit
