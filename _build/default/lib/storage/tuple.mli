(** Tuple encoding and comparison.

    Tuples are fixed-width byte strings laid out by a {!Schema}.  Integers
    use a big-endian sign-biased encoding so that unsigned byte comparison
    orders them numerically — comparisons in the engine are therefore plain
    [Bytes] comparisons on the key field, matching the paper's "compare
    keys" primitive. *)

type value = VInt of int | VStr of string

val encode : Schema.t -> value list -> bytes
(** [encode schema values] lays out one tuple.
    @raise Invalid_argument on arity or type mismatch, a string longer than
    its column, or an integer out of range for its column width. *)

val decode : Schema.t -> bytes -> value list
(** Inverse of {!encode} (strings come back NUL-stripped). *)

val get_int : Schema.t -> bytes -> int -> int
(** [get_int schema tuple i] decodes integer column [i]. *)

val get_str : Schema.t -> bytes -> int -> string
(** [get_str schema tuple i] decodes string column [i], NUL-stripped. *)

val set_int : Schema.t -> bytes -> int -> int -> unit
(** In-place update of integer column [i]. *)

val key_bytes : Schema.t -> bytes -> bytes
(** Copy of the key field. *)

val compare_keys : Schema.t -> bytes -> bytes -> int
(** Byte-wise comparison of the key fields of two tuples of the same
    schema.  This is the comparison the cost model charges [comp] for. *)

val compare_key_to : Schema.t -> bytes -> bytes -> int
(** [compare_key_to schema tuple key] compares [tuple]'s key field against
    a standalone encoded key value. *)

val hash_key : Schema.t -> bytes -> int
(** FNV-1a over the key field — the "hash a key" primitive. *)

val encode_int_key : Schema.t -> int -> bytes
(** [encode_int_key schema v] encodes [v] as a standalone key using the key
    column's width (for probes). *)

val int_key_range : Schema.t -> int * int
(** [(min, max)] representable range of the key column when it is an
    integer column. *)

val pp : Schema.t -> Format.formatter -> bytes -> unit
