(** Tuple identifiers: (page index within a relation, slot within page).

    Section 3.2 of the paper discusses hash/sort structures holding TIDs or
    TID-key pairs instead of whole tuples; indexes here resolve to TIDs and
    the experiments can then charge the random fetch the paper warns
    about. *)

type t = { page : int; slot : int }

val make : page:int -> slot:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val encoded_width : int
(** Bytes needed by {!encode} (8). *)

val encode_into : t -> bytes -> int -> unit
(** [encode_into tid buf off] serialises as two big-endian u32s. *)

val decode_from : bytes -> int -> t
