type t = {
  comp : float;
  hash : float;
  move : float;
  swap : float;
  io_seq : float;
  io_rand : float;
  fudge : float;
}

let table2 =
  {
    comp = 3e-6;
    hash = 9e-6;
    move = 20e-6;
    swap = 60e-6;
    io_seq = 10e-3;
    io_rand = 25e-3;
    fudge = 1.2;
  }

let zero_io c = { c with io_seq = 0.0; io_rand = 0.0 }

let pp ppf c =
  Format.fprintf ppf
    "comp=%.2gus hash=%.2gus move=%.2gus swap=%.2gus IOseq=%.2gms \
     IOrand=%.2gms F=%.2g"
    (c.comp *. 1e6) (c.hash *. 1e6) (c.move *. 1e6) (c.swap *. 1e6)
    (c.io_seq *. 1e3) (c.io_rand *. 1e3) c.fudge
