type t = {
  cost : Cost.t;
  clock : Sim_clock.t;
  counters : Counters.t;
}

let create ?(cost = Cost.table2) () =
  { cost; clock = Sim_clock.create (); counters = Counters.create () }

let charge_comp t =
  t.counters.Counters.comparisons <- t.counters.Counters.comparisons + 1;
  Sim_clock.advance t.clock t.cost.Cost.comp

let charge_comps t n =
  if n > 0 then begin
    t.counters.Counters.comparisons <- t.counters.Counters.comparisons + n;
    Sim_clock.advance t.clock (float_of_int n *. t.cost.Cost.comp)
  end

let charge_hash t =
  t.counters.Counters.hashes <- t.counters.Counters.hashes + 1;
  Sim_clock.advance t.clock t.cost.Cost.hash

let charge_move t =
  t.counters.Counters.moves <- t.counters.Counters.moves + 1;
  Sim_clock.advance t.clock t.cost.Cost.move

let charge_swap t =
  t.counters.Counters.swaps <- t.counters.Counters.swaps + 1;
  Sim_clock.advance t.clock t.cost.Cost.swap

let charge_io_seq_read t =
  t.counters.Counters.seq_reads <- t.counters.Counters.seq_reads + 1;
  Sim_clock.advance t.clock t.cost.Cost.io_seq

let charge_io_seq_write t =
  t.counters.Counters.seq_writes <- t.counters.Counters.seq_writes + 1;
  Sim_clock.advance t.clock t.cost.Cost.io_seq

let charge_io_rand_read t =
  t.counters.Counters.rand_reads <- t.counters.Counters.rand_reads + 1;
  Sim_clock.advance t.clock t.cost.Cost.io_rand

let charge_io_rand_write t =
  t.counters.Counters.rand_writes <- t.counters.Counters.rand_writes + 1;
  Sim_clock.advance t.clock t.cost.Cost.io_rand

let elapsed t = Sim_clock.now t.clock

let reset t =
  Sim_clock.reset t.clock;
  Counters.reset t.counters
