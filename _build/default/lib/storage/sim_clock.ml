type t = { mutable time : float }

let create () = { time = 0.0 }
let now t = t.time

let advance t dt =
  if dt < 0.0 then invalid_arg "Sim_clock.advance: negative dt";
  t.time <- t.time +. dt

let advance_to t at = if at > t.time then t.time <- at
let reset t = t.time <- 0.0
