type t = {
  rel_name : string;
  rel_schema : Schema.t;
  rel_disk : Disk.t;
  mutable pages : int list; (* reversed page ids *)
  mutable npages : int;
  mutable ntuples : int;
  mutable tail : bytes option; (* partial page being filled *)
  mutable charged : bool; (* whether any charged append happened *)
  mutable write_mode : Disk.io_mode; (* pricing of charged spills *)
}

let create ~disk ~name ~schema =
  (* Validate the schema fits the page size up front. *)
  ignore
    (Page.capacity ~page_size:(Disk.page_size disk)
       ~tuple_width:(Schema.tuple_width schema));
  {
    rel_name = name;
    rel_schema = schema;
    rel_disk = disk;
    pages = [];
    npages = 0;
    ntuples = 0;
    tail = None;
    charged = false;
    write_mode = Disk.Seq;
  }

let name t = t.rel_name
let schema t = t.rel_schema
let disk t = t.rel_disk
let env t = Disk.env t.rel_disk
let ntuples t = t.ntuples

let tuples_per_page t =
  Page.capacity ~page_size:(Disk.page_size t.rel_disk)
    ~tuple_width:(Schema.tuple_width t.rel_schema)

let npages t = t.npages + (match t.tail with Some _ -> 1 | None -> 0)

let set_write_mode t mode = t.write_mode <- mode

let spill t page ~charge =
  let pid = Disk.alloc t.rel_disk in
  if charge then Disk.write t.rel_disk ~mode:t.write_mode pid page
  else Disk.write_nocharge t.rel_disk pid page;
  t.pages <- pid :: t.pages;
  t.npages <- t.npages + 1

let tail_page t =
  match t.tail with
  | Some p -> p
  | None ->
    let p = Page.create (Disk.page_size t.rel_disk) in
    t.tail <- Some p;
    p

let append_common t tuple ~charge =
  let tw = Schema.tuple_width t.rel_schema in
  if Bytes.length tuple <> tw then
    invalid_arg "Relation.append: tuple width mismatch";
  if charge then t.charged <- true;
  let page = tail_page t in
  if not (Page.append page ~tuple_width:tw tuple) then begin
    spill t page ~charge;
    let fresh = Page.create (Disk.page_size t.rel_disk) in
    let ok = Page.append fresh ~tuple_width:tw tuple in
    assert ok;
    t.tail <- Some fresh
  end;
  t.ntuples <- t.ntuples + 1

let append t tuple = append_common t tuple ~charge:true
let append_nocharge t tuple = append_common t tuple ~charge:false

let seal t =
  match t.tail with
  | None -> ()
  | Some page ->
    if Page.count page > 0 then spill t page ~charge:t.charged
    else ();
    t.tail <- None

let page_ids t = Array.of_list (List.rev t.pages)

let iter_pages ?(mode = Disk.Seq) t f =
  seal t;
  Array.iter (fun pid -> f (Disk.read t.rel_disk ~mode pid)) (page_ids t)

let iter_tuples ?(mode = Disk.Seq) t f =
  let tw = Schema.tuple_width t.rel_schema in
  iter_pages ~mode t (fun page -> Page.iter page ~tuple_width:tw (fun _ tup -> f tup))

let iter_tuples_nocharge t f =
  seal t;
  let tw = Schema.tuple_width t.rel_schema in
  Array.iter
    (fun pid ->
      let page = Disk.read_nocharge t.rel_disk pid in
      Page.iter page ~tuple_width:tw (fun _ tup -> f tup))
    (page_ids t)

let iter_tids_nocharge t f =
  seal t;
  let tw = Schema.tuple_width t.rel_schema in
  Array.iteri
    (fun pidx pid ->
      let page = Disk.read_nocharge t.rel_disk pid in
      Page.iter page ~tuple_width:tw (fun slot tup ->
          f (Tid.make ~page:pidx ~slot) tup))
    (page_ids t)

let fetch ?(mode = Disk.Rand) t tid =
  seal t;
  let ids = page_ids t in
  if tid.Tid.page < 0 || tid.Tid.page >= Array.length ids then
    invalid_arg "Relation.fetch: page out of range";
  let page = Disk.read t.rel_disk ~mode ids.(tid.Tid.page) in
  let tw = Schema.tuple_width t.rel_schema in
  if tid.Tid.slot < 0 || tid.Tid.slot >= Page.count page then
    invalid_arg "Relation.fetch: slot out of range";
  Page.get page ~tuple_width:tw tid.Tid.slot

let of_tuples ~disk ~name ~schema tuples =
  let t = create ~disk ~name ~schema in
  List.iter (append_nocharge t) tuples;
  seal t;
  t

let with_schema t schema =
  if Schema.tuple_width schema <> Schema.tuple_width t.rel_schema then
    invalid_arg "Relation.with_schema: tuple width mismatch";
  seal t;
  { t with rel_schema = schema }

let to_list t =
  let acc = ref [] in
  iter_tuples_nocharge t (fun tup -> acc := tup :: !acc);
  List.rev !acc

let free_pages t =
  seal t;
  List.iter (Disk.free t.rel_disk) t.pages;
  t.pages <- [];
  t.npages <- 0;
  t.ntuples <- 0;
  t.charged <- false;
  t.tail <- None
