lib/storage/counters.mli: Format
