lib/storage/env.mli: Cost Counters Sim_clock
