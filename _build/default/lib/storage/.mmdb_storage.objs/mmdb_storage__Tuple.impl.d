lib/storage/tuple.ml: Array Bytes Char Format Int64 List Printf Schema String
