lib/storage/relation.mli: Disk Env Schema Tid
