lib/storage/tid.ml: Bytes Char Format Int
