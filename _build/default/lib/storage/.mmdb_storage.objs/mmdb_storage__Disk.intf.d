lib/storage/disk.mli: Env
