lib/storage/relation.ml: Array Bytes Disk List Page Schema Tid
