lib/storage/counters.ml: Format
