lib/storage/disk.ml: Bytes Env Hashtbl Page Printf
