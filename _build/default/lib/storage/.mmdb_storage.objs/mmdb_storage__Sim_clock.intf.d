lib/storage/sim_clock.mli:
