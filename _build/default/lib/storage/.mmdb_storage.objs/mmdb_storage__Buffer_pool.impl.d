lib/storage/buffer_pool.ml: Array Counters Disk Env Hashtbl Mmdb_util
