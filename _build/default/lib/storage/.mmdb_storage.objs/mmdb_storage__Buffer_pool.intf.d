lib/storage/buffer_pool.mli: Disk Mmdb_util
