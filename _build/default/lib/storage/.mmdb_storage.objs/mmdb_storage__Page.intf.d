lib/storage/page.mli:
