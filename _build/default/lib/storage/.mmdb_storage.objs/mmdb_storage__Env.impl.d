lib/storage/env.ml: Cost Counters Sim_clock
