(** Buffer pool over a {!Disk} with pluggable replacement.

    Section 2 of the paper derives page-fault rates for tree traversals
    under the assumption of a *random* replacement policy with [|M|] resident
    pages; this module implements that policy (plus LRU and Clock for the
    ablation in DESIGN.md) and counts hits and faults in the environment's
    counters.  A miss charges one random I/O; a dirty eviction charges a
    random write. *)

type policy =
  | Random_replacement of Mmdb_util.Xorshift.t
      (** Evict a uniformly random resident frame — the paper's §2 model. *)
  | Lru
  | Clock
  | Fifo  (** evict the longest-resident page regardless of use *)
  | Lru_2
      (** evict the page with the oldest {e second}-most-recent access
          (LRU-K with K = 2); pages touched only once rank below all
          twice-touched pages — §6's "buffer management strategies" *)

type t

val create : disk:Disk.t -> capacity:int -> policy -> t
(** [create ~disk ~capacity policy] is an empty pool of [capacity] frames
    ([|M|] pages).  @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val resident : t -> int
(** Number of frames currently holding a page. *)

val is_resident : t -> int -> bool
(** [is_resident t pid] is true when [pid] occupies a frame (no charge,
    no recency update). *)

val get : t -> int -> bytes
(** [get t pid] returns the page, faulting it in (one random read, one
    fault counted) if absent; a hit counts [pool_hits] and costs nothing.
    The returned bytes are the live frame: callers that mutate it must call
    {!mark_dirty}.  Eviction of a dirty frame writes it back (one random
    write). *)

val mark_dirty : t -> int -> unit
(** Flag a resident page as modified.  @raise Invalid_argument if the page
    is not resident. *)

val flush : t -> int -> unit
(** Write one resident dirty page back (random write); no-op when clean or
    absent. *)

val flush_all : t -> unit
(** Write back every dirty frame; pages stay resident. *)

val drop_all : t -> unit
(** Discard every frame {e without} write-back — simulates losing volatile
    memory in a crash. *)

val iter_resident : t -> (int -> unit) -> unit
(** Apply to every resident page id (used by the checkpoint sweeper). *)
