(** Relation schemas with fixed-width columns.

    The paper's analysis is parameterised by tuple width [t] and key width
    [K] in bytes; schemas here make both explicit.  Integer columns are
    encoded order-preservingly (big-endian, sign-biased) so that the
    byte-wise comparisons counted by the cost model are also semantically
    correct comparisons. *)

type col_type =
  | Int  (** order-preserving encoded integer *)
  | Fixed_string  (** right-padded with NULs *)

type column = { name : string; ty : col_type; width : int }

type t

val column : ?width:int -> string -> col_type -> column
(** [column ?width name ty] — [width] defaults to 8 for [Int] and is
    required for [Fixed_string].
    @raise Invalid_argument for nonpositive widths, or [Int] width not in
    [\[1..8\]]. *)

val create : key:string -> column list -> t
(** [create ~key columns] builds a schema whose join/sort/index key is
    column [key].  @raise Invalid_argument on duplicate or missing names,
    or an empty column list. *)

val columns : t -> column list
val tuple_width : t -> int
(** Total width [t] in bytes. *)

val key_index : t -> int
val key_offset : t -> int
val key_width : t -> int
(** Width [K] of the key column in bytes. *)

val column_index : t -> string -> int
(** @raise Not_found if no column has that name. *)

val offset : t -> int -> int
(** Byte offset of column [i] within a tuple. *)

val column_at : t -> int -> column

val with_key : t -> string -> t
(** Same columns, different key column. *)

val pp : Format.formatter -> t -> unit
