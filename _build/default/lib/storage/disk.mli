(** Simulated disk: a page store with charged, counted I/O.

    The paper's evaluation charges 10 ms per sequential and 25 ms per random
    page I/O (Table 2) and counts page accesses; this module reproduces that
    cost structure over an in-memory page table.  Operators declare whether
    each access is sequential or random — exactly how the paper's formulas
    assign [IOseq] vs [IOrand] — because the 1984 distinction is about arm
    movement that a simulator cannot infer from page numbers alone.

    Pages survive simulated crashes: a crash discards volatile state (buffer
    pools, in-memory indexes), never disk contents. *)

type t

type io_mode = Seq | Rand
(** How an access is charged: [Seq] = IOseq, [Rand] = IOrand. *)

val create : env:Env.t -> page_size:int -> t
(** A disk with no allocated pages. *)

val env : t -> Env.t
val page_size : t -> int

val page_count : t -> int
(** Number of currently allocated pages. *)

val alloc : t -> int
(** [alloc d] allocates a zeroed page and returns its id.  Allocation
    itself charges no I/O (the write that follows does). *)

val read : t -> mode:io_mode -> int -> bytes
(** [read d ~mode pid] charges one I/O and returns a copy of the page.
    @raise Invalid_argument if [pid] was never allocated or was freed. *)

val write : t -> mode:io_mode -> int -> bytes -> unit
(** [write d ~mode pid page] charges one I/O and stores a copy.
    @raise Invalid_argument on unknown page or size mismatch. *)

val free : t -> int -> unit
(** Release a page (e.g. temporary partition files after a join). *)

val read_nocharge : t -> int -> bytes
(** Uninstrumented read for tests and recovery-inspection code paths. *)

val write_nocharge : t -> int -> bytes -> unit
(** Uninstrumented write, used when pre-loading workloads so that setup
    cost does not pollute an experiment's counters. *)
