type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | None -> List.map (fun _ -> Right) headers
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Tablefmt.create: aligns arity mismatch";
      a
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row ->
        match row with
        | Rule -> ws
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) ws cells)
      (List.map String.length t.headers)
      rows
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    let parts =
      List.map2
        (fun (w, a) c -> pad a w c)
        (List.combine widths t.aligns)
        cells
    in
    Buffer.add_string buf (String.concat "  " parts);
    Buffer.add_char buf '\n'
  in
  let rule () =
    let total =
      List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1))
    in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buf
