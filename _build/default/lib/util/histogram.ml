type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~buckets =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if buckets <= 0 then invalid_arg "Histogram.create: buckets <= 0";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int buckets;
    counts = Array.make buckets 0;
    under = 0;
    over = 0;
    total = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let bucket_counts t = Array.copy t.counts
let underflow t = t.under
let overflow t = t.over

let bucket_bounds t i =
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let pp ppf t =
  let maxc = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bucket_bounds t i in
        let bar = String.make (max 1 (c * 40 / maxc)) '#' in
        Format.fprintf ppf "[%8.4g, %8.4g) %8d %s@." lo hi c bar
      end)
    t.counts;
  if t.under > 0 then Format.fprintf ppf "underflow %d@." t.under;
  if t.over > 0 then Format.fprintf ppf "overflow  %d@." t.over
