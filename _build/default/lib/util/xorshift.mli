(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a fixed seed.  The generator is
    xorshift64*, which is fast, has a 2^64 - 1 period, and passes the
    statistical tests that matter for workload generation (we do not need
    cryptographic strength). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator.  A zero seed is remapped to a fixed
    non-zero constant because xorshift has a fixed point at zero. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current state. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** [sample_without_replacement t ~n ~k] is [k] distinct values drawn
    uniformly from [\[0, n)], in random order.
    @raise Invalid_argument if [k > n] or [k < 0]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution; used for
    transaction inter-arrival times in the recovery simulator. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] draws from a Zipf-like distribution over [\[0, n)],
    skew [theta] (0 = uniform).  Used for skewed key workloads.  Uses the
    rejection-free inverse-CDF approximation of Gray et al. *)
