(** Small descriptive-statistics helpers used by the benchmark harness and
    the recovery simulator's latency reporting. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** Descriptive summary of a sample. *)

val summarize : float array -> summary
(** [summarize xs] computes a summary.  @raise Invalid_argument on an empty
    array.  The input is not modified (a sorted copy is taken). *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singleton samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 1\]] using linear interpolation on a
    sorted copy.  @raise Invalid_argument on empty input or p outside
    [\[0,1\]]. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render a summary on one line. *)

type welford
(** Online mean/variance accumulator (Welford's algorithm), for streams too
    large to buffer. *)

val welford_create : unit -> welford
val welford_add : welford -> float -> unit
val welford_count : welford -> int
val welford_mean : welford -> float
val welford_stddev : welford -> float
