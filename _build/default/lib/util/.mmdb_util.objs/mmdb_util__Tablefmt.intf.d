lib/util/tablefmt.mli:
