lib/util/heap.mli:
