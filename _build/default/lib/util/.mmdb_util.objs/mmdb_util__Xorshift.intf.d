lib/util/xorshift.mli:
