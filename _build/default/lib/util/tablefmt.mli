(** Plain-text table rendering for the benchmark harness.

    The bench executable must print rows formatted like the paper's tables
    (Table 1, Table 2, ...); this module handles column sizing and
    alignment so every experiment printer stays tiny. *)

type align = Left | Right
(** Column alignment. *)

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create ?aligns headers] starts a table.  [aligns] defaults to [Right]
    for every column.  @raise Invalid_argument if [aligns] is given with a
    length different from [headers]. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  @raise Invalid_argument if the arity
    differs from the header. *)

val add_rule : t -> unit
(** [add_rule t] appends a horizontal separator line. *)

val render : t -> string
(** [render t] is the formatted table, newline-terminated. *)

val print : t -> unit
(** [print t] writes {!render} to standard output. *)

val cell_float : ?decimals:int -> float -> string
(** [cell_float ?decimals x] formats a float for a cell (default 2
    decimals). *)

val cell_int : int -> string
(** [cell_int n] formats an int with thousands separators (e.g.
    ["1,234,567"]). *)
