type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.stddev: empty sample";
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let w = rank -. float_of_int lo in
      ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile_sorted sorted 0.5;
    p90 = percentile_sorted sorted 0.9;
    p99 = percentile_sorted sorted 0.99;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

type welford = {
  mutable count : int;
  mutable w_mean : float;
  mutable m2 : float;
}

let welford_create () = { count = 0; w_mean = 0.0; m2 = 0.0 }

let welford_add w x =
  w.count <- w.count + 1;
  let delta = x -. w.w_mean in
  w.w_mean <- w.w_mean +. (delta /. float_of_int w.count);
  w.m2 <- w.m2 +. (delta *. (x -. w.w_mean))

let welford_count w = w.count
let welford_mean w = w.w_mean

let welford_stddev w =
  if w.count < 2 then 0.0 else sqrt (w.m2 /. float_of_int (w.count - 1))
