(** Fixed-bucket histogram for latency distributions in the recovery
    simulator and workload diagnostics. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** [create ~lo ~hi ~buckets] builds an empty histogram covering
    [\[lo, hi)] with equal-width buckets plus underflow/overflow bins.
    @raise Invalid_argument if [hi <= lo] or [buckets <= 0]. *)

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
(** Total observations recorded. *)

val bucket_counts : t -> int array
(** Counts per regular bucket (excludes under/overflow). *)

val underflow : t -> int
val overflow : t -> int

val bucket_bounds : t -> int -> float * float
(** [bucket_bounds t i] is the [\[lo, hi)] range of bucket [i]. *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering, one line per non-empty bucket with a bar. *)
