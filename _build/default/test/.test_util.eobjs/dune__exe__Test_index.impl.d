test/test_index.ml: Alcotest Array Float Int List Map Mmdb_index Mmdb_storage Mmdb_util Printf QCheck QCheck_alcotest
