test/test_sql.ml: Alcotest Format List Mmdb Mmdb_exec Mmdb_planner Mmdb_storage Printf String
