test/test_exec.ml: Alcotest Array Float Gen Hashtbl List Mmdb_exec Mmdb_index Mmdb_storage Mmdb_util Printf QCheck QCheck_alcotest
