test/test_util.ml: Alcotest Array Float Fun Hashtbl Int Int64 List Mmdb_util Printf QCheck QCheck_alcotest String
