test/test_planner.ml: Alcotest Float Format Hashtbl List Mmdb_exec Mmdb_planner Mmdb_storage Mmdb_util Printf QCheck QCheck_alcotest String
