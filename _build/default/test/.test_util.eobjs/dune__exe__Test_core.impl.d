test/test_core.ml: Alcotest Array Filename Fun List Mmdb Mmdb_exec Mmdb_planner Mmdb_recovery Mmdb_storage Printf String Sys
