test/test_recovery.ml: Alcotest Array Float Gen Hashtbl List Mmdb_recovery Mmdb_storage Mmdb_util Option Printf QCheck QCheck_alcotest
