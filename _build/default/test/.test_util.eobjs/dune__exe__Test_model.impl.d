test/test_model.ml: Alcotest Float List Mmdb_model Mmdb_storage Printf
