test/test_storage.ml: Alcotest Array Bytes Float Gen List Mmdb_storage Mmdb_util Printf QCheck QCheck_alcotest
