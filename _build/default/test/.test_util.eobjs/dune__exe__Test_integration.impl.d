test/test_integration.ml: Alcotest Filename Fun Hashtbl List Mmdb Mmdb_storage Mmdb_util Printf String Sys
