test/test_extensions.ml: Alcotest Array Gen List Mmdb Mmdb_exec Mmdb_index Mmdb_recovery Mmdb_storage Mmdb_util Printf QCheck QCheck_alcotest
