(* Tests for Mmdb_model: the Section 2 access-method model (Table 1), the
   Section 3 join cost model (Figure 1 / Tables 2-3), and the Section 5
   recovery throughput model. *)

module AM = Mmdb_model.Access_model
module JM = Mmdb_model.Join_model
module RM = Mmdb_model.Recovery_model
module C = Mmdb_storage.Cost

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let feq ?(eps = 1e-9) name a b =
  checkb
    (Printf.sprintf "%s: %.6g ~= %.6g" name a b)
    true
    (Float.abs (a -. b) <= eps)

(* ------------------------------------------------------------------ *)
(* Access model (Section 2)                                            *)
(* ------------------------------------------------------------------ *)

let test_structure_sizes () =
  let p = AM.default in
  (* S = 1e6 * (40 + 8) / 4096 = 11719 pages. *)
  checki "S (AVL pages)" 11719 (AM.avl_pages p);
  (* Fanout = 0.69 * 4096 / 12 = 235.5. *)
  feq ~eps:0.1 "fanout" 235.52 (AM.btree_fanout p);
  (* D = 1e6 / (0.69*4096/40) = 14154 leaves. *)
  checki "D (leaves)" 14154 (AM.btree_leaf_pages p);
  (* height = ceil(log_235.5 14156) = 2. *)
  checki "height" 2 (AM.btree_height p);
  checkb "S' slightly above D" true (AM.btree_pages p > AM.btree_leaf_pages p);
  checkb "S' below 1.02 D" true
    (float_of_int (AM.btree_pages p)
    < 1.02 *. float_of_int (AM.btree_leaf_pages p))

let test_comparisons () =
  let p = AM.default in
  feq ~eps:0.01 "C = log2 1e6 + 0.25" 20.18 (AM.avl_comparisons p);
  feq "C' = ceil(log2 1e6)" 20.0 (AM.btree_comparisons p)

let test_costs_at_extremes () =
  let p = AM.default in
  (* No memory: AVL pays Z per comparison level, B+ pays Z*(height+1). *)
  let avl0 = AM.avl_random_cost p ~m:0 in
  let bt0 = AM.btree_random_cost p ~m:0 in
  checkb "btree much cheaper with no memory" true (bt0 < avl0 /. 4.0);
  (* Full residency: AVL does no I/O and wins (Y <= 1). *)
  let m_full = AM.avl_pages p in
  let avl1 = AM.avl_random_cost p ~m:m_full in
  let bt1 = AM.btree_random_cost p ~m:m_full in
  checkb "avl wins fully resident" true (avl1 <= bt1);
  feq ~eps:0.01 "avl fully resident = Y*C" (AM.avl_comparisons p) avl1

let test_crossover_in_paper_band () =
  (* Paper: "unless more than 80%-90% of the database fits in main
     memory" B+-trees are preferred.  Check every Z, Y cell. *)
  List.iter
    (fun z ->
      List.iter
        (fun y ->
          let p = { AM.default with AM.z; AM.y } in
          let h = AM.crossover_h p in
          checkb
            (Printf.sprintf "Z=%.0f Y=%.2f crossover %.3f in [0.8, 1.0]" z y h)
            true
            (h >= 0.8 && h <= 1.0))
        [ 0.5; 0.75; 1.0 ])
    [ 10.0; 20.0; 30.0 ]

let test_crossover_monotone_in_z () =
  (* Larger Z (pricier I/O) makes the I/O-free AVL endgame more valuable,
     but also makes the B+-tree's smaller structure matter more; with
     Y < 1 the paper's (1-Y)/Z term shrinks as Z grows, pushing the
     crossover up. *)
  let h z = AM.crossover_h { AM.default with AM.z; AM.y = 0.5 } in
  checkb "H(10) <= H(20)" true (h 10.0 <= h 20.0 +. 1e-9);
  checkb "H(20) <= H(30)" true (h 20.0 <= h 30.0 +. 1e-9)

let test_crossover_y1_insensitive_to_z () =
  (* With Y = 1 the (1-Y)/Z advantage vanishes; crossover depends only on
     the geometry. *)
  let h z = AM.crossover_h { AM.default with AM.z; AM.y = 1.0 } in
  feq ~eps:0.005 "H same for Z=10,30" (h 10.0) (h 30.0)

let test_crossover_consistency () =
  let p = AM.default in
  let h = AM.crossover_h p in
  let s = float_of_int (AM.avl_pages p) in
  let just_below = int_of_float ((h -. 0.02) *. s) in
  let just_above = int_of_float ((h +. 0.02) *. s) in
  checkb "below crossover: btree preferred" false
    (AM.avl_preferred p ~m:just_below);
  checkb "above crossover: avl preferred" true
    (AM.avl_preferred p ~m:just_above)

let test_sequential_crossover_band () =
  List.iter
    (fun z ->
      let p = { AM.default with AM.z } in
      let h = AM.crossover_h_seq p ~n:1000 in
      checkb
        (Printf.sprintf "Z=%.0f seq crossover %.3f in [0.85, 1.0]" z h)
        true
        (h >= 0.85 && h <= 1.0))
    [ 10.0; 20.0; 30.0 ]

let test_seq_costs_scale_with_n () =
  let p = AM.default in
  let c1 = AM.avl_seq_cost p ~m:0 ~n:100 in
  let c2 = AM.avl_seq_cost p ~m:0 ~n:200 in
  feq ~eps:1e-6 "avl seq linear in n" (2.0 *. c1) c2;
  (* B+-tree reads far fewer pages per record. *)
  checkb "btree seq beats avl seq with no memory" true
    (AM.btree_seq_cost p ~m:0 ~n:1000 < AM.avl_seq_cost p ~m:0 ~n:1000)

(* ------------------------------------------------------------------ *)
(* Join model (Section 3, Figure 1)                                    *)
(* ------------------------------------------------------------------ *)

let w = JM.table2_workload

let m_of_ratio ratio =
  max (JM.min_memory w)
    (int_of_float (ratio *. float_of_int w.JM.r_pages *. w.JM.cost.C.fudge))

let test_workload_counts () =
  checki "||R||" 400_000 (JM.r_tuples w);
  checki "||S||" 400_000 (JM.s_tuples w);
  checki "min memory = ceil sqrt(|S|F)" 110 (JM.min_memory w)

let test_validate () =
  Alcotest.check_raises "too little memory"
    (Invalid_argument "Join_model: |M| = 50 below sqrt(|S|*F) = 110")
    (fun () -> JM.validate w ~m:50);
  let bad = { w with JM.r_pages = 20_000 } in
  Alcotest.check_raises "R bigger than S"
    (Invalid_argument "Join_model: requires |R| <= |S|") (fun () ->
      JM.validate bad ~m:5000)

let test_grace_flat () =
  (* GRACE partitions regardless of memory: cost is memory-independent. *)
  feq "grace flat"
    (JM.grace_hash w ~m:(m_of_ratio 0.05))
    (JM.grace_hash w ~m:(m_of_ratio 0.9))

let test_hybrid_never_worse_than_grace () =
  List.iter
    (fun ratio ->
      let m = m_of_ratio ratio in
      checkb
        (Printf.sprintf "hybrid <= grace at ratio %.2f" ratio)
        true
        (JM.hybrid_hash w ~m <= JM.grace_hash w ~m +. 1e-9))
    [ 0.01; 0.05; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]

let test_hybrid_decreasing_in_memory () =
  let prev = ref infinity in
  List.iter
    (fun ratio ->
      let c = JM.hybrid_hash w ~m:(m_of_ratio ratio) in
      checkb (Printf.sprintf "hybrid monotone at %.2f" ratio) true
        (c <= !prev +. 1e-9);
      prev := c)
    [ 0.01; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.8; 1.0 ]

let test_simple_hash_explodes_small_memory () =
  let small = JM.simple_hash w ~m:(m_of_ratio 0.01) in
  let large = JM.simple_hash w ~m:(m_of_ratio 0.9) in
  checkb "simple >30x worse with 1% memory" true (small > 30.0 *. large);
  checki "pass count at 1%" 100 (JM.simple_hash_passes w ~m:(m_of_ratio 0.01));
  checki "one pass when fits" 1 (JM.simple_hash_passes w ~m:(m_of_ratio 1.0))

let test_hybrid_equals_simple_when_fits () =
  let m = m_of_ratio 1.0 in
  feq ~eps:1e-6 "hybrid = simple with full memory" (JM.simple_hash w ~m)
    (JM.hybrid_hash w ~m);
  checki "B = 0" 0 (JM.hybrid_partitions w ~m);
  feq "q = 1" 1.0 (JM.hybrid_q w ~m)

let test_hybrid_discontinuity_at_half () =
  (* Crossing |M| = |R|F/2 changes B from 2 to 1 and the write mode from
     random to sequential: an abrupt drop. *)
  let before = JM.hybrid_hash w ~m:(m_of_ratio 0.49) in
  let after = JM.hybrid_hash w ~m:(m_of_ratio 0.55) in
  checki "B=2 just below" 2 (JM.hybrid_partitions w ~m:(m_of_ratio 0.49));
  checki "B=1 just above" 1 (JM.hybrid_partitions w ~m:(m_of_ratio 0.55));
  checkb
    (Printf.sprintf "drop %.0f -> %.0f is > 30%%" before after)
    true
    (after < 0.7 *. before)

let test_simple_beats_hybrid_in_small_region () =
  (* The paper: "our graphs indicate that simple hash will outperform
     hybrid hash in a small region" (just below the 0.5 discontinuity). *)
  let m = m_of_ratio 0.45 in
  checkb "simple < hybrid at ratio 0.45" true
    (JM.simple_hash w ~m < JM.hybrid_hash w ~m);
  (* ... and nowhere below ratio 0.2. *)
  List.iter
    (fun ratio ->
      let m = m_of_ratio ratio in
      checkb
        (Printf.sprintf "hybrid < simple at ratio %.2f" ratio)
        true
        (JM.hybrid_hash w ~m < JM.simple_hash w ~m))
    [ 0.01; 0.05; 0.1; 0.2 ]

let test_sort_merge_improves_above_ratio_one () =
  let at_one = JM.sort_merge w ~m:(m_of_ratio 1.0 - 200) in
  let above = JM.sort_merge w ~m:(m_of_ratio 1.3) in
  checkb "drops above 1.0" true (above < at_one);
  (* The paper says "approximately 900 seconds". *)
  checkb (Printf.sprintf "in-memory sort-merge %.0fs in [800, 1100]" above)
    true
    (above >= 800.0 && above <= 1100.0)

let test_figure1_ordering_mid_range () =
  (* At moderate memory, the paper's Figure 1 ordering:
     hybrid < grace < sort-merge, with simple above hybrid. *)
  let m = m_of_ratio 0.1 in
  let hybrid = JM.hybrid_hash w ~m in
  let grace = JM.grace_hash w ~m in
  let sm = JM.sort_merge w ~m in
  let simple = JM.simple_hash w ~m in
  checkb "hybrid < grace" true (hybrid < grace);
  checkb "grace < sort-merge" true (grace < sm);
  checkb "hybrid < simple" true (hybrid < simple)

let test_all_four_labels () =
  let costs = JM.all_four w ~m:(m_of_ratio 0.5) in
  Alcotest.(check (list string))
    "labels"
    [ "sort-merge"; "simple"; "grace"; "hybrid" ]
    (List.map fst costs);
  List.iter (fun (_, c) -> checkb "positive" true (c > 0.0)) costs

(* Table 3 sensitivity: the qualitative conclusions hold across the
   parameter ranges of Table 3. *)
let table3_corners () =
  let corners = ref [] in
  List.iter
    (fun comp ->
      List.iter
        (fun hash ->
          List.iter
            (fun io_seq ->
              List.iter
                (fun fudge ->
                  List.iter
                    (fun s_pages ->
                      corners :=
                        {
                          JM.r_pages = min 10_000 s_pages;
                          JM.s_pages = s_pages;
                          JM.r_tuples_per_page = 40;
                          JM.s_tuples_per_page = 40;
                          JM.cost =
                            {
                              C.table2 with
                              C.comp;
                              C.hash;
                              C.io_seq;
                              C.io_rand = io_seq *. 2.5;
                              C.fudge;
                            };
                        }
                        :: !corners)
                    [ 10_000; 50_000 ])
                [ 1.0; 1.4 ])
            [ 5e-3; 10e-3 ])
        [ 2e-6; 50e-6 ])
    [ 1e-6; 10e-6 ];
  !corners

let test_table3_sensitivity () =
  List.iter
    (fun wl ->
      List.iter
        (fun ratio ->
          let m =
            max (JM.min_memory wl)
              (int_of_float
                 (ratio *. float_of_int wl.JM.r_pages *. wl.JM.cost.C.fudge))
          in
          let hybrid = JM.hybrid_hash wl ~m in
          let grace = JM.grace_hash wl ~m in
          checkb "hybrid <= grace (all corners)" true (hybrid <= grace +. 1e-9))
        [ 0.05; 0.3; 0.7; 1.0 ])
    (table3_corners ())

(* ------------------------------------------------------------------ *)
(* Recovery model (Section 5)                                          *)
(* ------------------------------------------------------------------ *)

let test_paper_throughput_numbers () =
  let r = RM.gray_banking in
  feq "conventional 100 tps" 100.0 (RM.conventional_tps r);
  checki "10 txns per page" 10 (RM.txns_per_page r ~compressed:false);
  feq "group commit 1000 tps" 1000.0 (RM.group_commit_tps r);
  feq "4 devices -> 4000 tps" 4000.0 (RM.partitioned_tps r ~devices:4)

let test_log_bytes () =
  let r = RM.gray_banking in
  checki "400 bytes/txn" 400 (RM.log_bytes_per_txn r ~compressed:false);
  checki "220 bytes compressed" 220 (RM.log_bytes_per_txn r ~compressed:true);
  feq "ratio 0.55" 0.55 (RM.log_compression_ratio r)

let test_stable_memory_gains () =
  let r = RM.gray_banking in
  let plain = RM.stable_memory_tps r ~devices:1 ~compressed:false in
  let compressed = RM.stable_memory_tps r ~devices:1 ~compressed:true in
  feq "uncompressed stable = group commit" (RM.group_commit_tps r) plain;
  checkb "compression increases throughput" true (compressed > plain);
  feq "1800 tps compressed" 1800.0 compressed

let test_device_validation () =
  let r = RM.gray_banking in
  Alcotest.check_raises "zero devices"
    (Invalid_argument "Recovery_model.partitioned_tps: devices") (fun () ->
      ignore (RM.partitioned_tps r ~devices:0))

let () =
  Alcotest.run "mmdb_model"
    [
      ( "access_model",
        [
          Alcotest.test_case "structure sizes" `Quick test_structure_sizes;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "cost extremes" `Quick test_costs_at_extremes;
          Alcotest.test_case "crossover in 80-100% band" `Quick
            test_crossover_in_paper_band;
          Alcotest.test_case "crossover monotone in Z" `Quick
            test_crossover_monotone_in_z;
          Alcotest.test_case "Y=1 insensitive to Z" `Quick
            test_crossover_y1_insensitive_to_z;
          Alcotest.test_case "crossover consistent" `Quick
            test_crossover_consistency;
          Alcotest.test_case "sequential crossover band" `Quick
            test_sequential_crossover_band;
          Alcotest.test_case "sequential scaling" `Quick
            test_seq_costs_scale_with_n;
        ] );
      ( "join_model",
        [
          Alcotest.test_case "workload counts" `Quick test_workload_counts;
          Alcotest.test_case "validation" `Quick test_validate;
          Alcotest.test_case "grace flat" `Quick test_grace_flat;
          Alcotest.test_case "hybrid <= grace" `Quick
            test_hybrid_never_worse_than_grace;
          Alcotest.test_case "hybrid monotone" `Quick
            test_hybrid_decreasing_in_memory;
          Alcotest.test_case "simple explodes small memory" `Quick
            test_simple_hash_explodes_small_memory;
          Alcotest.test_case "hybrid = simple when fits" `Quick
            test_hybrid_equals_simple_when_fits;
          Alcotest.test_case "discontinuity at 0.5" `Quick
            test_hybrid_discontinuity_at_half;
          Alcotest.test_case "simple beats hybrid in small region" `Quick
            test_simple_beats_hybrid_in_small_region;
          Alcotest.test_case "sort-merge improves above 1.0" `Quick
            test_sort_merge_improves_above_ratio_one;
          Alcotest.test_case "figure 1 mid-range ordering" `Quick
            test_figure1_ordering_mid_range;
          Alcotest.test_case "all_four labels" `Quick test_all_four_labels;
          Alcotest.test_case "table 3 sensitivity" `Quick
            test_table3_sensitivity;
        ] );
      ( "recovery_model",
        [
          Alcotest.test_case "paper throughput numbers" `Quick
            test_paper_throughput_numbers;
          Alcotest.test_case "log bytes" `Quick test_log_bytes;
          Alcotest.test_case "stable memory gains" `Quick
            test_stable_memory_gains;
          Alcotest.test_case "device validation" `Quick test_device_validation;
        ] );
    ]
