(* Tests for Mmdb_planner: algebra, catalog statistics, selectivity
   estimation, the Section 4 optimizer (selection pushdown, build-side
   choice, algorithm choice vs memory), and plan execution. *)

module S = Mmdb_storage
module E = Mmdb_exec
module P = Mmdb_planner
module A = P.Algebra
module U = Mmdb_util

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* A small star schema: employees and departments. *)
let emp_schema () =
  S.Schema.create ~key:"id"
    [
      S.Schema.column "id" S.Schema.Int;
      S.Schema.column "dept" S.Schema.Int;
      S.Schema.column "salary" S.Schema.Int;
    ]

let dept_schema () =
  S.Schema.create ~key:"dept_id"
    [
      S.Schema.column "dept_id" S.Schema.Int;
      S.Schema.column "budget" S.Schema.Int;
    ]

let setup ?(n_emp = 200) ?(n_dept = 10) () =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:512 in
  let rng = U.Xorshift.create 42 in
  let emp =
    S.Relation.of_tuples ~disk ~name:"emp" ~schema:(emp_schema ())
      (List.init n_emp (fun i ->
           S.Tuple.encode (emp_schema ())
             [
               S.Tuple.VInt i;
               S.Tuple.VInt (U.Xorshift.int rng n_dept);
               S.Tuple.VInt (30_000 + U.Xorshift.int rng 70_000);
             ]))
  in
  let dept =
    S.Relation.of_tuples ~disk ~name:"dept" ~schema:(dept_schema ())
      (List.init n_dept (fun i ->
           S.Tuple.encode (dept_schema ())
             [ S.Tuple.VInt i; S.Tuple.VInt (100_000 * (i + 1)) ]))
  in
  let cat = P.Catalog.create () in
  P.Catalog.register cat emp;
  P.Catalog.register cat dept;
  (env, disk, cat)

let cfg = P.Optimizer.default_config

(* ------------------------------------------------------------------ *)
(* Algebra                                                             *)
(* ------------------------------------------------------------------ *)

let test_predicate_eval () =
  let sch = emp_schema () in
  let tup =
    S.Tuple.encode sch
      [ S.Tuple.VInt 7; S.Tuple.VInt 3; S.Tuple.VInt 50_000 ]
  in
  let pred op v = { A.column = "salary"; A.op; A.value = S.Tuple.VInt v } in
  checkb "eq hit" true (A.eval_predicate sch (pred A.Eq 50_000) tup);
  checkb "eq miss" false (A.eval_predicate sch (pred A.Eq 1) tup);
  checkb "lt" true (A.eval_predicate sch (pred A.Lt 60_000) tup);
  checkb "ge" true (A.eval_predicate sch (pred A.Ge 50_000) tup);
  checkb "ne" true (A.eval_predicate sch (pred A.Ne 1) tup)

let test_predicate_type_mismatch () =
  let sch = emp_schema () in
  let tup =
    S.Tuple.encode sch [ S.Tuple.VInt 1; S.Tuple.VInt 1; S.Tuple.VInt 1 ]
  in
  checkb "mismatch raises" true
    (try
       ignore
         (A.eval_predicate sch
            { A.column = "salary"; A.op = A.Eq; A.value = S.Tuple.VStr "x" }
            tup);
       false
     with Invalid_argument _ -> true)

let test_base_relations () =
  let e =
    A.join ~left_key:"dept" ~right_key:"dept_id"
      (A.select ~column:"salary" ~op:A.Gt ~value:(S.Tuple.VInt 0)
         (A.scan "emp"))
      (A.scan "dept")
  in
  Alcotest.(check (list string)) "bases" [ "emp"; "dept" ] (A.base_relations e)

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)
(* ------------------------------------------------------------------ *)

let test_catalog_stats () =
  let _, _, cat = setup () in
  let ts = P.Catalog.stats cat "emp" in
  checki "ntuples" 200 ts.P.Catalog.ntuples;
  let dept_col = P.Catalog.column_stats cat ~table:"emp" ~column:"dept" in
  checki "dept distinct" 10 dept_col.P.Catalog.ndistinct;
  checkb "dept min" true (dept_col.P.Catalog.min_int = Some 0);
  checkb "dept max" true (dept_col.P.Catalog.max_int = Some 9);
  let id_col = P.Catalog.column_stats cat ~table:"emp" ~column:"id" in
  checki "ids unique" 200 id_col.P.Catalog.ndistinct

let test_catalog_unknown () =
  let _, _, cat = setup () in
  checkb "unknown table" true
    (try
       ignore (P.Catalog.find cat "nope");
       false
     with Not_found -> true);
  checkb "mem" true (P.Catalog.mem cat "emp");
  checkb "not mem" false (P.Catalog.mem cat "nope")

(* ------------------------------------------------------------------ *)
(* Selectivity                                                         *)
(* ------------------------------------------------------------------ *)

let feq ?(eps = 1e-6) name a b =
  checkb (Printf.sprintf "%s: %g ~= %g" name a b) true (Float.abs (a -. b) <= eps)

let test_selectivity_scan () =
  let _, _, cat = setup () in
  feq "scan = ntuples" 200.0 (P.Selectivity.estimate cat (A.scan "emp"))

let test_selectivity_eq () =
  let _, _, cat = setup () in
  let e =
    A.select ~column:"dept" ~op:A.Eq ~value:(S.Tuple.VInt 3) (A.scan "emp")
  in
  feq "eq = n/ndistinct" 20.0 (P.Selectivity.estimate cat e)

let test_selectivity_range () =
  let _, _, cat = setup () in
  let e =
    A.select ~column:"dept" ~op:A.Lt ~value:(S.Tuple.VInt 5) (A.scan "emp")
  in
  let est = P.Selectivity.estimate cat e in
  (* True answer ~100 (uniform depts 0..9); the equi-depth histogram on a
     ten-value domain is coarse, so accept a generous band. *)
  checkb (Printf.sprintf "range est %.0f in [60,140]" est) true
    (est >= 60.0 && est <= 140.0)

let test_selectivity_histogram_skew () =
  (* Heavily skewed column: 90% of values are 0, the rest spread to 1000.
     Min/max interpolation would put sel(< 500) near 0.5; the equi-depth
     histogram knows better. *)
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:512 in
  let schema =
    S.Schema.create ~key:"k" [ S.Schema.column "k" S.Schema.Int ]
  in
  let rel =
    S.Relation.of_tuples ~disk ~name:"skew" ~schema
      (List.init 1000 (fun i ->
           S.Tuple.encode schema
             [ S.Tuple.VInt (if i < 900 then 0 else (i - 899) * 10) ]))
  in
  let cat = P.Catalog.create () in
  P.Catalog.register cat rel;
  let cs = P.Catalog.column_stats cat ~table:"skew" ~column:"k" in
  checkb "quantiles present" true (cs.P.Catalog.quantiles <> None);
  let est =
    P.Selectivity.estimate cat
      (A.select ~column:"k" ~op:A.Gt ~value:(S.Tuple.VInt 500) (A.scan "skew"))
  in
  (* True answer: values > 500 are (i-899)*10 > 500, i.e. i > 949: 50
     tuples.  The histogram estimate must be far below min/max's ~500. *)
  checkb (Printf.sprintf "skew-aware estimate %.0f < 130" est) true
    (est < 130.0);
  checkb "and nonzero" true (est > 0.0)

let test_selectivity_join () =
  let _, _, cat = setup () in
  let e =
    A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
      (A.scan "dept")
  in
  (* 200 * 10 / max(10, 10) = 200: every employee matches one dept. *)
  feq "fk join" 200.0 (P.Selectivity.estimate cat e)

let test_selectivity_aggregate () =
  let _, _, cat = setup () in
  let e =
    A.aggregate ~group_by:"dept" ~aggs:[ E.Aggregate.Count ] (A.scan "emp")
  in
  feq "groups = distinct depts" 10.0 (P.Selectivity.estimate cat e)

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_output_schema_join_prefixes () =
  let _, _, cat = setup () in
  let e =
    A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
      (A.scan "dept")
  in
  let schema = P.Optimizer.output_schema cat e in
  let names =
    List.map (fun (c : S.Schema.column) -> c.S.Schema.name)
      (S.Schema.columns schema)
  in
  Alcotest.(check (list string))
    "prefixed columns"
    [ "r_id"; "r_dept"; "r_salary"; "s_dept_id"; "s_budget" ]
    names

let test_pushdown_below_join () =
  let _, _, cat = setup () in
  let e =
    A.select ~column:"r_salary" ~op:A.Gt ~value:(S.Tuple.VInt 60_000)
      (A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
         (A.scan "dept"))
  in
  let plan = P.Optimizer.plan cat cfg e in
  (* The selection must sit below the join after planning. *)
  (match plan with
  | P.Optimizer.P_join { left = P.Optimizer.P_filter { pred; _ }; _ } ->
    checks "pushed predicate column" "salary" pred.A.column
  | P.Optimizer.P_join _ -> Alcotest.fail "selection not pushed to left input"
  | _ -> Alcotest.fail "top of plan should be the join")

let test_build_side_is_smaller () =
  let _, _, cat = setup () in
  (* dept (10 rows) is smaller: joining emp x dept must build on dept
     (swapped, since dept is the right input). *)
  let e =
    A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
      (A.scan "dept")
  in
  match P.Optimizer.plan cat cfg e with
  | P.Optimizer.P_join { choice; _ } ->
    checkb "swapped to build on dept" true choice.P.Optimizer.swapped;
    checkb "build smaller than probe" true
      (choice.P.Optimizer.est_build_pages <= choice.P.Optimizer.est_probe_pages)
  | _ -> Alcotest.fail "expected join plan"

let test_algorithm_choice_hash_with_memory () =
  let _, _, cat = setup () in
  let e =
    A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
      (A.scan "dept")
  in
  (match P.Optimizer.plan cat { cfg with P.Optimizer.mem_pages = 4096 } e with
  | P.Optimizer.P_join { choice; _ } ->
    checkb "hash family chosen" true
      (match choice.P.Optimizer.algorithm with
      | E.Joiner.Hybrid_hash_join | E.Joiner.Simple_hash_join -> true
      | _ -> false)
  | _ -> Alcotest.fail "expected join");
  (* Hash forbidden: must fall back to sort-merge. *)
  match
    P.Optimizer.plan cat { cfg with P.Optimizer.allow_hash = false } e
  with
  | P.Optimizer.P_join { choice; _ } ->
    checkb "sort-merge when hash disabled" true
      (choice.P.Optimizer.algorithm = E.Joiner.Sort_merge_join)
  | _ -> Alcotest.fail "expected join"

let test_hash_plan_cheaper_than_sort_plan () =
  let _, _, cat = setup ~n_emp:2000 () in
  let e =
    A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
      (A.scan "dept")
  in
  let hash_cost =
    P.Optimizer.estimated_cost (P.Optimizer.plan cat cfg e)
  in
  let sort_cost =
    P.Optimizer.estimated_cost
      (P.Optimizer.plan cat { cfg with P.Optimizer.allow_hash = false } e)
  in
  checkb
    (Printf.sprintf "hash %.4g <= sort %.4g" hash_cost sort_cost)
    true (hash_cost <= sort_cost)

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_explain_mentions_algorithm () =
  let _, _, cat = setup () in
  let e =
    A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
      (A.scan "dept")
  in
  let s = P.Optimizer.explain (P.Optimizer.plan cat cfg e) in
  checkb "mentions join" true (contains_substring s "join");
  checkb "mentions scan emp" true (contains_substring s "scan emp");
  checkb "mentions an estimate" true (contains_substring s "est=")

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let int_rows rel =
  List.map
    (List.map (function
      | S.Tuple.VInt v -> v
      | S.Tuple.VStr _ -> Alcotest.fail "unexpected string"))
    (P.Executor.rows rel)

let test_execute_scan () =
  let _, _, cat = setup ~n_emp:5 () in
  let out = P.Executor.query cat cfg (A.scan "dept") in
  checki "10 departments" 10 (S.Relation.ntuples out)

let test_execute_filter () =
  let _, _, cat = setup () in
  let out =
    P.Executor.query cat cfg
      (A.select ~column:"dept" ~op:A.Eq ~value:(S.Tuple.VInt 3)
         (A.scan "emp"))
  in
  let rows = int_rows out in
  checkb "nonempty" true (rows <> []);
  List.iter (fun row -> checki "dept=3" 3 (List.nth row 1)) rows

let test_execute_join_matches_oracle () =
  let _, _, cat = setup () in
  let e =
    A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
      (A.scan "dept")
  in
  let out = P.Executor.query cat cfg e in
  (* Every employee joins exactly one department. *)
  checki "200 result rows" 200 (S.Relation.ntuples out);
  let rows = int_rows out in
  List.iter
    (fun row ->
      match row with
      | [ _id; dept; _salary; dept_id; budget ] ->
        checki "join key matches" dept dept_id;
        checki "budget consistent" (100_000 * (dept_id + 1)) budget
      | _ -> Alcotest.fail "arity")
    rows

let test_execute_join_all_algorithms_same_result () =
  let _, _, cat = setup () in
  let e =
    A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
      (A.scan "dept")
  in
  let run_with_mem m =
    let out =
      P.Executor.query cat { cfg with P.Optimizer.mem_pages = m } e
    in
    List.sort compare (int_rows out)
  in
  let reference = run_with_mem 4096 in
  List.iter
    (fun m -> Alcotest.(check (list (list int))) "same rows" reference (run_with_mem m))
    [ 4; 16; 64 ]

let test_execute_filter_above_join () =
  let _, _, cat = setup () in
  let e =
    A.select ~column:"s_budget" ~op:A.Ge ~value:(S.Tuple.VInt 500_000)
      (A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
         (A.scan "dept"))
  in
  let rows = int_rows (P.Executor.query cat cfg e) in
  checkb "nonempty" true (rows <> []);
  List.iter
    (fun row -> checkb "budget filter" true (List.nth row 4 >= 500_000))
    rows

let test_execute_aggregate () =
  let _, _, cat = setup () in
  let e =
    A.aggregate ~group_by:"dept"
      ~aggs:[ E.Aggregate.Count; E.Aggregate.Sum "salary" ]
      (A.scan "emp")
  in
  let rows = int_rows (P.Executor.query cat cfg e) in
  checki "10 groups" 10 (List.length rows);
  let total = List.fold_left (fun a row -> a + List.nth row 1) 0 rows in
  checki "counts sum to 200" 200 total

let test_execute_project_distinct () =
  let _, _, cat = setup () in
  let e = A.project ~distinct:true ~columns:[ "dept" ] (A.scan "emp") in
  let rows = int_rows (P.Executor.query cat cfg e) in
  checki "10 distinct departments" 10 (List.length rows)

let test_execute_order_by () =
  let _, _, cat = setup () in
  let sorted_salaries descending =
    List.map
      (fun row -> List.nth row 2)
      (int_rows
         (P.Executor.query cat cfg
            (A.order_by ~descending ~column:"salary" (A.scan "emp"))))
  in
  let asc = sorted_salaries false in
  let desc = sorted_salaries true in
  Alcotest.(check (list int)) "ascending" (List.sort compare asc) asc;
  Alcotest.(check (list int)) "descending is reverse" (List.rev asc) desc;
  checki "no rows lost" 200 (List.length asc)

let test_execute_order_by_above_aggregate () =
  let _, _, cat = setup () in
  let rows =
    int_rows
      (P.Executor.query cat cfg
         (A.order_by ~descending:true ~column:"count"
            (A.aggregate ~group_by:"dept" ~aggs:[ E.Aggregate.Count ]
               (A.scan "emp"))))
  in
  let counts = List.map (fun r -> List.nth r 1) rows in
  Alcotest.(check (list int))
    "counts descending"
    (List.rev (List.sort compare counts))
    counts

let test_execute_three_way_join () =
  (* emp |> join dept |> aggregate: a star query through the whole
     pipeline. *)
  let _, _, cat = setup () in
  let e =
    A.aggregate ~group_by:"r_dept" ~aggs:[ E.Aggregate.Count ]
      (A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
         (A.scan "dept"))
  in
  let rows = int_rows (P.Executor.query cat cfg e) in
  checki "10 groups" 10 (List.length rows);
  checki "counts total 200" 200
    (List.fold_left (fun a r -> a + List.nth r 1) 0 rows)

(* ------------------------------------------------------------------ *)
(* Naive reference evaluator + random query trees                      *)
(* ------------------------------------------------------------------ *)

(* Evaluate an expression by brute force over decoded rows, independent of
   the operator implementations. *)
let rec naive_eval cat (expr : A.expr) : S.Tuple.value list list =
  match expr with
  | A.Scan name -> P.Executor.rows (P.Catalog.find cat name)
  | A.Order_by { input; column; descending } ->
    let schema = P.Optimizer.output_schema cat input in
    let ci = S.Schema.column_index schema column in
    let cmp a b = compare (List.nth a ci) (List.nth b ci) in
    let sorted = List.stable_sort cmp (naive_eval cat input) in
    if descending then List.rev sorted else sorted
  | A.Set_op { op; left; right } -> (
    let l = List.sort_uniq compare (naive_eval cat left) in
    let r = List.sort_uniq compare (naive_eval cat right) in
    match op with
    | A.Union -> List.sort_uniq compare (l @ r)
    | A.Intersect -> List.filter (fun x -> List.mem x r) l
    | A.Except -> List.filter (fun x -> not (List.mem x r)) l)
  | A.Select { input; pred } ->
    let schema = P.Optimizer.output_schema cat input in
    List.filter
      (fun row ->
        let tup = S.Tuple.encode schema row in
        A.eval_predicate schema pred tup)
      (naive_eval cat input)
  | A.Project { input; columns; distinct } ->
    let schema = P.Optimizer.output_schema cat input in
    let idxs = List.map (S.Schema.column_index schema) columns in
    let rows =
      List.map
        (fun row -> List.map (fun i -> List.nth row i) idxs)
        (naive_eval cat input)
    in
    if distinct then List.sort_uniq compare rows else rows
  | A.Join { left; right; left_key; right_key } ->
    let ls = P.Optimizer.output_schema cat left in
    let rs = P.Optimizer.output_schema cat right in
    let li = S.Schema.column_index ls left_key in
    let ri = S.Schema.column_index rs right_key in
    let rrows = naive_eval cat right in
    List.concat_map
      (fun lrow ->
        List.filter_map
          (fun rrow ->
            if List.nth lrow li = List.nth rrow ri then Some (lrow @ rrow)
            else None)
          rrows)
      (naive_eval cat left)
  | A.Aggregate { input; group_by; aggs } ->
    let schema = P.Optimizer.output_schema cat input in
    let gi = S.Schema.column_index schema group_by in
    let groups = Hashtbl.create 16 in
    List.iter
      (fun row ->
        let g = List.nth row gi in
        let cur = try Hashtbl.find groups g with Not_found -> [] in
        Hashtbl.replace groups g (row :: cur))
      (naive_eval cat input);
    let col_val row name =
      match List.nth row (S.Schema.column_index schema name) with
      | S.Tuple.VInt v -> v
      | S.Tuple.VStr _ -> Alcotest.fail "string aggregate"
    in
    Hashtbl.fold
      (fun g rows acc ->
        let n = List.length rows in
        let agg_vals =
          List.map
            (fun spec ->
              match spec with
              | E.Aggregate.Count -> S.Tuple.VInt n
              | E.Aggregate.Sum c ->
                S.Tuple.VInt
                  (List.fold_left (fun a r -> a + col_val r c) 0 rows)
              | E.Aggregate.Min c ->
                S.Tuple.VInt
                  (List.fold_left (fun a r -> min a (col_val r c)) max_int rows)
              | E.Aggregate.Max c ->
                S.Tuple.VInt
                  (List.fold_left (fun a r -> max a (col_val r c)) min_int rows)
              | E.Aggregate.Avg c ->
                S.Tuple.VInt
                  (List.fold_left (fun a r -> a + col_val r c) 0 rows / n))
            aggs
        in
        (g :: agg_vals) :: acc)
      groups []

(* Random expression trees over the emp/dept catalog, schema-directed so
   every column reference is valid. *)
let gen_expr cat =
  let open QCheck.Gen in
  let int_columns schema =
    List.filter_map
      (fun (c : S.Schema.column) ->
        match c.S.Schema.ty with
        | S.Schema.Int -> Some c.S.Schema.name
        | S.Schema.Fixed_string -> None)
      (S.Schema.columns schema)
  in
  let rec gen depth =
    if depth = 0 then oneofl [ A.scan "emp"; A.scan "dept" ]
    else
      gen (depth - 1) >>= fun input ->
      let schema = P.Optimizer.output_schema cat input in
      let cols = int_columns schema in
      int_range 0 4 >>= fun shape ->
      match shape with
      | 0 ->
        (* selection on a random int column *)
        oneofl cols >>= fun column ->
        oneofl [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge ] >>= fun op ->
        int_range 0 2000 >|= fun v ->
        A.select ~column ~op ~value:(S.Tuple.VInt v) input
      | 1 ->
        (* projection of a random nonempty prefix of the int columns *)
        int_range 1 (List.length cols) >>= fun k ->
        bool >|= fun distinct ->
        A.project ~distinct ~columns:(List.filteri (fun i _ -> i < k) cols)
          input
      | 2 ->
        (* join with a base relation on random int columns *)
        oneofl cols >>= fun left_key ->
        oneofl [ "emp"; "dept" ] >>= fun base ->
        let base_schema = P.Optimizer.output_schema cat (A.scan base) in
        oneofl (int_columns base_schema) >|= fun right_key ->
        A.join ~left_key ~right_key input (A.scan base)
      | 3 ->
        (* aggregation on a random int column *)
        oneofl cols >>= fun group_by ->
        oneofl cols >|= fun agg_col ->
        A.aggregate ~group_by
          ~aggs:[ E.Aggregate.Count; E.Aggregate.Sum agg_col ]
          input
      | _ ->
        (* presentation sort *)
        oneofl cols >>= fun column ->
        bool >|= fun descending -> A.order_by ~descending ~column input
  in
  int_range 1 3 >>= gen

let qcheck_planner_matches_naive =
  (* Built once: the catalog is immutable across cases. *)
  let _, _, cat = setup ~n_emp:60 ~n_dept:6 () in
  QCheck.Test.make ~name:"optimized plans match the naive evaluator"
    ~count:60
    (QCheck.make
       ~print:(fun e -> Format.asprintf "%a" A.pp e)
       (gen_expr cat))
    (fun expr ->
      let expected = List.sort compare (naive_eval cat expr) in
      let planned =
        List.sort compare
          (P.Executor.rows (P.Executor.query cat cfg expr))
      in
      let planned_small_mem =
        List.sort compare
          (P.Executor.rows
             (P.Executor.query cat { cfg with P.Optimizer.mem_pages = 4 } expr))
      in
      planned = expected && planned_small_mem = expected)

let () =
  Alcotest.run "mmdb_planner"
    [
      ( "algebra",
        [
          Alcotest.test_case "predicate eval" `Quick test_predicate_eval;
          Alcotest.test_case "type mismatch" `Quick
            test_predicate_type_mismatch;
          Alcotest.test_case "base relations" `Quick test_base_relations;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "stats" `Quick test_catalog_stats;
          Alcotest.test_case "unknown" `Quick test_catalog_unknown;
        ] );
      ( "selectivity",
        [
          Alcotest.test_case "scan" `Quick test_selectivity_scan;
          Alcotest.test_case "equality" `Quick test_selectivity_eq;
          Alcotest.test_case "range" `Quick test_selectivity_range;
          Alcotest.test_case "histogram on skew" `Quick
            test_selectivity_histogram_skew;
          Alcotest.test_case "join" `Quick test_selectivity_join;
          Alcotest.test_case "aggregate" `Quick test_selectivity_aggregate;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "join schema prefixes" `Quick
            test_output_schema_join_prefixes;
          Alcotest.test_case "selection pushdown" `Quick
            test_pushdown_below_join;
          Alcotest.test_case "build side smaller" `Quick
            test_build_side_is_smaller;
          Alcotest.test_case "algorithm choice" `Quick
            test_algorithm_choice_hash_with_memory;
          Alcotest.test_case "hash cheaper than sort" `Quick
            test_hash_plan_cheaper_than_sort_plan;
          Alcotest.test_case "explain output" `Quick
            test_explain_mentions_algorithm;
        ] );
      ( "executor",
        [
          Alcotest.test_case "scan" `Quick test_execute_scan;
          Alcotest.test_case "filter" `Quick test_execute_filter;
          Alcotest.test_case "join vs oracle" `Quick
            test_execute_join_matches_oracle;
          Alcotest.test_case "same result any memory" `Quick
            test_execute_join_all_algorithms_same_result;
          Alcotest.test_case "filter above join" `Quick
            test_execute_filter_above_join;
          Alcotest.test_case "aggregate" `Quick test_execute_aggregate;
          Alcotest.test_case "project distinct" `Quick
            test_execute_project_distinct;
          Alcotest.test_case "order by" `Quick test_execute_order_by;
          Alcotest.test_case "order by above aggregate" `Quick
            test_execute_order_by_above_aggregate;
          Alcotest.test_case "join + aggregate" `Quick
            test_execute_three_way_join;
          QCheck_alcotest.to_alcotest qcheck_planner_matches_naive;
        ] );
    ]
