(* Tests for Mmdb_index: AVL tree, B+-tree, pager fault accounting.
   Both trees are checked model-based against Stdlib.Map over random
   operation sequences, plus structural invariants after every batch. *)

module S = Mmdb_storage
module U = Mmdb_util
module I = Mmdb_index

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let schema () =
  S.Schema.create ~key:"k"
    [ S.Schema.column "k" S.Schema.Int; S.Schema.column "v" S.Schema.Int ]

let mk sch k v = S.Tuple.encode sch [ S.Tuple.VInt k; S.Tuple.VInt v ]
let key sch k = S.Tuple.encode_int_key sch k
let val_of sch tup = S.Tuple.get_int sch tup 1
let key_of sch tup = S.Tuple.get_int sch tup 0

module IntMap = Map.Make (Int)

(* Generic battery run against any index with the common signature. *)
type ops = {
  insert : bytes -> unit;
  search : bytes -> bytes option;
  delete : bytes -> bool;
  length : unit -> int;
  check : unit -> bool;
  iter : (bytes -> unit) -> unit;
}

let avl_ops t =
  {
    insert = I.Avl.insert t;
    search = I.Avl.search t;
    delete = I.Avl.delete t;
    length = (fun () -> I.Avl.length t);
    check = (fun () -> I.Avl.check_invariants t);
    iter = (fun f -> I.Avl.iter_in_order t f);
  }

let btree_ops t =
  {
    insert = I.Btree.insert t;
    search = I.Btree.search t;
    delete = I.Btree.delete t;
    length = (fun () -> I.Btree.length t);
    check = (fun () -> I.Btree.check_invariants t);
    iter = (fun f -> I.Btree.iter_in_order t f);
  }

let fresh_avl () =
  let env = S.Env.create () in
  I.Avl.create ~env ~schema:(schema ()) ()

let fresh_btree ?(page_size = 256) () =
  let env = S.Env.create () in
  I.Btree.create ~env ~schema:(schema ()) ~page_size ()

(* Model-based random-operation test. *)
let model_test make_ops n_ops seed () =
  let sch = schema () in
  let ops = make_ops () in
  let rng = U.Xorshift.create seed in
  let model = ref IntMap.empty in
  for step = 1 to n_ops do
    let k = U.Xorshift.int rng 200 in
    let action = U.Xorshift.int rng 3 in
    (match action with
    | 0 | 1 ->
      let v = U.Xorshift.int rng 1_000_000 in
      ops.insert (mk sch k v);
      model := IntMap.add k v !model
    | _ ->
      let deleted = ops.delete (key sch k) in
      let expected = IntMap.mem k !model in
      checkb (Printf.sprintf "step %d delete %d" step k) expected deleted;
      model := IntMap.remove k !model);
    if step mod 50 = 0 then begin
      checkb (Printf.sprintf "invariants at step %d" step) true (ops.check ());
      checki
        (Printf.sprintf "length at step %d" step)
        (IntMap.cardinal !model) (ops.length ())
    end
  done;
  (* Final full comparison: every model key searchable with right value,
     in-order iteration equals sorted model. *)
  checkb "final invariants" true (ops.check ());
  IntMap.iter
    (fun k v ->
      match ops.search (key sch k) with
      | Some tup -> checki (Printf.sprintf "value of %d" k) v (val_of sch tup)
      | None -> Alcotest.fail (Printf.sprintf "key %d missing" k))
    !model;
  for k = 0 to 199 do
    if not (IntMap.mem k !model) then
      checkb
        (Printf.sprintf "absent key %d" k)
        true
        (ops.search (key sch k) = None)
  done;
  let seen = ref [] in
  ops.iter (fun tup -> seen := key_of sch tup :: !seen);
  Alcotest.(check (list int))
    "in-order equals model"
    (List.map fst (IntMap.bindings !model))
    (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* AVL specifics                                                       *)
(* ------------------------------------------------------------------ *)

let test_avl_empty () =
  let t = fresh_avl () in
  let sch = schema () in
  checki "length" 0 (I.Avl.length t);
  checki "height" 0 (I.Avl.height t);
  checkb "search misses" true (I.Avl.search t (key sch 1) = None);
  checkb "delete misses" false (I.Avl.delete t (key sch 1));
  checkb "min none" true (I.Avl.min_tuple t = None);
  checkb "max none" true (I.Avl.max_tuple t = None);
  checkb "invariants" true (I.Avl.check_invariants t)

let test_avl_height_bound () =
  let t = fresh_avl () in
  let sch = schema () in
  (* Sorted insertion is the adversarial case for unbalanced trees. *)
  let n = 2048 in
  for i = 1 to n do
    I.Avl.insert t (mk sch i i)
  done;
  let h = I.Avl.height t in
  let bound =
    (* 1.4405 log2(n+2) - 0.3277 *)
    int_of_float (Float.ceil ((1.4405 *. Float.log2 (float_of_int (n + 2))) -. 0.3277))
  in
  checkb (Printf.sprintf "height %d <= %d" h bound) true (h <= bound);
  checkb "invariants after sorted inserts" true (I.Avl.check_invariants t)

let test_avl_duplicate_replaces () =
  let t = fresh_avl () in
  let sch = schema () in
  I.Avl.insert t (mk sch 5 1);
  I.Avl.insert t (mk sch 5 2);
  checki "length 1" 1 (I.Avl.length t);
  match I.Avl.search t (key sch 5) with
  | Some tup -> checki "replaced" 2 (val_of sch tup)
  | None -> Alcotest.fail "missing"

let test_avl_min_max () =
  let t = fresh_avl () in
  let sch = schema () in
  List.iter (fun k -> I.Avl.insert t (mk sch k k)) [ 7; 2; 9; 4; 1; 8 ];
  (match I.Avl.min_tuple t with
  | Some tup -> checki "min" 1 (key_of sch tup)
  | None -> Alcotest.fail "no min");
  match I.Avl.max_tuple t with
  | Some tup -> checki "max" 9 (key_of sch tup)
  | None -> Alcotest.fail "no max"

let test_avl_scan_from () =
  let t = fresh_avl () in
  let sch = schema () in
  List.iter (fun k -> I.Avl.insert t (mk sch k (k * 2))) [ 10; 20; 30; 40; 50 ];
  let got = I.Avl.scan_from t (key sch 25) 2 in
  Alcotest.(check (list int)) "scan from 25" [ 30; 40 ]
    (List.map (key_of sch) got);
  let from_existing = I.Avl.scan_from t (key sch 20) 3 in
  Alcotest.(check (list int)) "inclusive start" [ 20; 30; 40 ]
    (List.map (key_of sch) from_existing);
  let past_end = I.Avl.scan_from t (key sch 60) 5 in
  checki "past end empty" 0 (List.length past_end);
  let overrun = I.Avl.scan_from t (key sch 40) 10 in
  Alcotest.(check (list int)) "overrun clips" [ 40; 50 ]
    (List.map (key_of sch) overrun)

let test_avl_range_scan () =
  let t = fresh_avl () in
  let sch = schema () in
  for k = 1 to 20 do
    I.Avl.insert t (mk sch k k)
  done;
  let acc = ref [] in
  I.Avl.range_scan t ~lo:(key sch 5) ~hi:(key sch 9) (fun tup ->
      acc := key_of sch tup :: !acc);
  Alcotest.(check (list int)) "range [5,9]" [ 5; 6; 7; 8; 9 ] (List.rev !acc)

let test_avl_comparison_count_logarithmic () =
  let env = S.Env.create () in
  let sch = schema () in
  let t = I.Avl.create ~env ~schema:sch () in
  let n = 4096 in
  let rng = U.Xorshift.create 5 in
  let keys = Array.init n (fun i -> i) in
  U.Xorshift.shuffle rng keys;
  Array.iter (fun k -> I.Avl.insert t (mk sch k k)) keys;
  let before = env.S.Env.counters.S.Counters.comparisons in
  let probes = 500 in
  for _ = 1 to probes do
    ignore (I.Avl.search t (key sch (U.Xorshift.int rng n)))
  done;
  let per_probe =
    float_of_int (env.S.Env.counters.S.Counters.comparisons - before)
    /. float_of_int probes
  in
  (* Paper: about log2 |R| + 0.25 comparisons. *)
  let expected = Float.log2 (float_of_int n) +. 0.25 in
  checkb
    (Printf.sprintf "%.2f comps/probe within 20%% of %.2f" per_probe expected)
    true
    (Float.abs (per_probe -. expected) < 0.2 *. expected)

(* ------------------------------------------------------------------ *)
(* B+-tree specifics                                                   *)
(* ------------------------------------------------------------------ *)

let test_btree_empty () =
  let t = fresh_btree () in
  let sch = schema () in
  checki "length" 0 (I.Btree.length t);
  checki "height" 1 (I.Btree.height t);
  checkb "search misses" true (I.Btree.search t (key sch 1) = None);
  checkb "delete misses" false (I.Btree.delete t (key sch 1));
  checkb "min none" true (I.Btree.min_tuple t = None);
  checkb "invariants" true (I.Btree.check_invariants t)

let test_btree_capacities () =
  let t = fresh_btree ~page_size:4096 () in
  (* K=8, s=4: fanout = 4096/12 = 341. tuple width 16: lcap = 4094/16 = 255. *)
  checki "fanout" 341 (I.Btree.fanout t);
  checki "leaf capacity" 255 (I.Btree.leaf_capacity t)

let test_btree_split_grows_height () =
  let t = fresh_btree ~page_size:64 () in
  let sch = schema () in
  (* lcap = 62/16 = 3; inserting 4 forces a split. *)
  for k = 1 to 4 do
    I.Btree.insert t (mk sch k k)
  done;
  checki "height 2" 2 (I.Btree.height t);
  checkb "invariants" true (I.Btree.check_invariants t);
  checki "all present" 4 (I.Btree.length t)

let test_btree_sorted_bulk () =
  let t = fresh_btree ~page_size:128 () in
  let sch = schema () in
  let n = 1000 in
  for k = 1 to n do
    I.Btree.insert t (mk sch k k)
  done;
  checkb "invariants" true (I.Btree.check_invariants t);
  checki "length" n (I.Btree.length t);
  (* Every key findable. *)
  for k = 1 to n do
    match I.Btree.search t (key sch k) with
    | Some tup -> checki "value" k (val_of sch tup)
    | None -> Alcotest.fail (Printf.sprintf "missing %d" k)
  done

let test_btree_delete_collapses () =
  let t = fresh_btree ~page_size:64 () in
  let sch = schema () in
  for k = 1 to 100 do
    I.Btree.insert t (mk sch k k)
  done;
  for k = 1 to 100 do
    checkb (Printf.sprintf "delete %d" k) true (I.Btree.delete t (key sch k));
    checkb
      (Printf.sprintf "invariants after delete %d" k)
      true (I.Btree.check_invariants t)
  done;
  checki "empty" 0 (I.Btree.length t);
  checki "height back to 1" 1 (I.Btree.height t)

let test_btree_scan_from_crosses_leaves () =
  let t = fresh_btree ~page_size:64 () in
  let sch = schema () in
  for k = 1 to 50 do
    I.Btree.insert t (mk sch (k * 2) k)
  done;
  (* Keys 2,4,...,100; scan from 51 -> 52,54,...  *)
  let got = I.Btree.scan_from t (key sch 51) 5 in
  Alcotest.(check (list int)) "scan" [ 52; 54; 56; 58; 60 ]
    (List.map (key_of sch) got)

let test_btree_range_scan () =
  let t = fresh_btree ~page_size:64 () in
  let sch = schema () in
  for k = 1 to 40 do
    I.Btree.insert t (mk sch k k)
  done;
  let acc = ref [] in
  I.Btree.range_scan t ~lo:(key sch 10) ~hi:(key sch 15) (fun tup ->
      acc := key_of sch tup :: !acc);
  Alcotest.(check (list int)) "range" [ 10; 11; 12; 13; 14; 15 ] (List.rev !acc)

let test_btree_random_load_occupancy () =
  let t = fresh_btree ~page_size:128 () in
  let sch = schema () in
  let rng = U.Xorshift.create 21 in
  let keys = Array.init 5000 (fun i -> i) in
  U.Xorshift.shuffle rng keys;
  Array.iter (fun k -> I.Btree.insert t (mk sch k k)) keys;
  let occ = I.Btree.avg_leaf_occupancy t in
  (* Yao: ~69% for random insertion (we accept a broad band). *)
  checkb (Printf.sprintf "occupancy %.2f in [0.6, 0.8]" occ) true
    (occ >= 0.60 && occ <= 0.80);
  checkb "invariants" true (I.Btree.check_invariants t)

let test_btree_comparison_count_logarithmic () =
  let env = S.Env.create () in
  let sch = schema () in
  let t = I.Btree.create ~env ~schema:sch ~page_size:256 () in
  let n = 4096 in
  let rng = U.Xorshift.create 5 in
  let keys = Array.init n (fun i -> i) in
  U.Xorshift.shuffle rng keys;
  Array.iter (fun k -> I.Btree.insert t (mk sch k k)) keys;
  let before = env.S.Env.counters.S.Counters.comparisons in
  let probes = 500 in
  for _ = 1 to probes do
    ignore (I.Btree.search t (key sch (U.Xorshift.int rng n)))
  done;
  let per_probe =
    float_of_int (env.S.Env.counters.S.Counters.comparisons - before)
    /. float_of_int probes
  in
  (* Paper: C' = ceil(log2 ||R||) comparisons, binary search adds O(1). *)
  let expected = Float.log2 (float_of_int n) in
  checkb
    (Printf.sprintf "%.2f comps/probe within 35%% of %.2f" per_probe expected)
    true
    (Float.abs (per_probe -. expected) < 0.35 *. expected)

(* ------------------------------------------------------------------ *)
(* Pager                                                               *)
(* ------------------------------------------------------------------ *)

let test_pager_no_faults_when_everything_fits () =
  let env = S.Env.create () in
  let sch = schema () in
  let disk = S.Disk.create ~env ~page_size:4096 in
  let t = I.Avl.create ~env ~schema:sch () in
  for k = 1 to 500 do
    I.Avl.insert t (mk sch k k)
  done;
  let pager =
    I.Pager.create ~disk ~pool_capacity:10_000
      ~policy:S.Buffer_pool.Lru ~nodes_per_page:10
  in
  I.Pager.attach_avl pager t;
  (* Warm: touch all pages once. *)
  I.Avl.iter_in_order t (fun _ -> ());
  let rng = U.Xorshift.create 3 in
  for _ = 1 to 200 do
    ignore (I.Avl.search t (key sch (1 + U.Xorshift.int rng 500)))
  done;
  let cold_faults = env.S.Env.counters.S.Counters.faults in
  (* All pages now resident; more searches fault nothing. *)
  for _ = 1 to 200 do
    ignore (I.Avl.search t (key sch (1 + U.Xorshift.int rng 500)))
  done;
  checki "no new faults" cold_faults env.S.Env.counters.S.Counters.faults

let test_pager_faults_under_pressure () =
  let env = S.Env.create () in
  let sch = schema () in
  let disk = S.Disk.create ~env ~page_size:4096 in
  let t = I.Avl.create ~env ~schema:sch () in
  for k = 1 to 2000 do
    I.Avl.insert t (mk sch k k)
  done;
  let rng_pol = U.Xorshift.create 17 in
  let pager =
    I.Pager.create ~disk ~pool_capacity:5
      ~policy:(S.Buffer_pool.Random_replacement rng_pol) ~nodes_per_page:10
  in
  I.Pager.attach_avl pager t;
  let before = env.S.Env.counters.S.Counters.faults in
  let rng = U.Xorshift.create 23 in
  for _ = 1 to 200 do
    ignore (I.Avl.search t (key sch (1 + U.Xorshift.int rng 2000)))
  done;
  checkb "faults occur under pressure" true
    (env.S.Env.counters.S.Counters.faults - before > 200)

let test_pager_btree_one_node_per_page () =
  let env = S.Env.create () in
  let sch = schema () in
  let disk = S.Disk.create ~env ~page_size:4096 in
  let t = I.Btree.create ~env ~schema:sch ~page_size:128 () in
  for k = 1 to 500 do
    I.Btree.insert t (mk sch k k)
  done;
  let pager =
    I.Pager.create ~disk ~pool_capacity:10_000 ~policy:S.Buffer_pool.Lru
      ~nodes_per_page:1
  in
  I.Pager.attach_btree pager t;
  let rng = U.Xorshift.create 29 in
  for _ = 1 to 300 do
    ignore (I.Btree.search t (key sch (1 + U.Xorshift.int rng 500)))
  done;
  (* Touched pages should be bounded by the number of live nodes. *)
  checkb "pages <= nodes" true
    (I.Pager.pages_touched pager <= I.Btree.node_count t)

(* ------------------------------------------------------------------ *)
(* Paged BST (the Section 2 footnote's structure)                      *)
(* ------------------------------------------------------------------ *)

let test_bst_basic_ops () =
  let env = S.Env.create () in
  let sch = schema () in
  let t = I.Paged_bst.create ~env ~schema:sch () in
  List.iter (fun k -> I.Paged_bst.insert t (mk sch k (k * 10))) [ 5; 2; 8; 1; 9 ];
  checki "length" 5 (I.Paged_bst.length t);
  (match I.Paged_bst.search t (key sch 8) with
  | Some tup -> checki "value" 80 (val_of sch tup)
  | None -> Alcotest.fail "missing");
  checkb "miss" true (I.Paged_bst.search t (key sch 7) = None);
  I.Paged_bst.insert t (mk sch 8 99);
  checki "replace keeps length" 5 (I.Paged_bst.length t);
  (match I.Paged_bst.search t (key sch 8) with
  | Some tup -> checki "replaced" 99 (val_of sch tup)
  | None -> Alcotest.fail "missing after replace");
  checkb "invariants" true (I.Paged_bst.check_invariants t)

let test_bst_degenerates_on_sorted_input () =
  (* The footnote: "paged binary trees are not balanced and the worst case
     access time may be significantly poorer". *)
  let env = S.Env.create () in
  let sch = schema () in
  let n = 2000 in
  let degenerate = I.Paged_bst.create ~env ~schema:sch () in
  for k = 1 to n do
    I.Paged_bst.insert degenerate (mk sch k k)
  done;
  checki "sorted insertion = linked list" n (I.Paged_bst.height degenerate);
  let random_tree = I.Paged_bst.create ~env ~schema:sch () in
  let keys = Array.init n (fun i -> i) in
  U.Xorshift.shuffle (U.Xorshift.create 7) keys;
  Array.iter (fun k -> I.Paged_bst.insert random_tree (mk sch k k)) keys;
  let h = I.Paged_bst.height random_tree in
  (* ~1.39 log2 n expected for a random BST; allow generous slack. *)
  checkb (Printf.sprintf "random height %d reasonable" h) true
    (h < 4 * int_of_float (Float.log2 (float_of_int n)));
  checkb "still a valid BST" true (I.Paged_bst.check_invariants random_tree)

let test_bst_vs_avl_comparisons () =
  let env_bst = S.Env.create () and env_avl = S.Env.create () in
  let sch = schema () in
  let bst = I.Paged_bst.create ~env:env_bst ~schema:sch () in
  let avl = I.Avl.create ~env:env_avl ~schema:sch () in
  (* Adversarial (sorted) load. *)
  for k = 1 to 1000 do
    I.Paged_bst.insert bst (mk sch k k);
    I.Avl.insert avl (mk sch k k)
  done;
  let probe_cost env search =
    let before = env.S.Env.counters.S.Counters.comparisons in
    for k = 1 to 1000 do
      ignore (search (key sch k))
    done;
    env.S.Env.counters.S.Counters.comparisons - before
  in
  let bst_comps = probe_cost env_bst (I.Paged_bst.search bst) in
  let avl_comps = probe_cost env_avl (I.Avl.search avl) in
  checkb
    (Printf.sprintf "degenerate BST (%d comps) >> AVL (%d comps)" bst_comps
       avl_comps)
    true
    (bst_comps > 20 * avl_comps)

let qcheck_bst_matches_map =
  QCheck.Test.make ~name:"paged BST equals Map on inserts/searches" ~count:80
    QCheck.(list (pair (int_range 0 60) (int_range 0 1000)))
    (fun ops ->
      let sch = schema () in
      let env = S.Env.create () in
      let t = I.Paged_bst.create ~env ~schema:sch () in
      let model =
        List.fold_left
          (fun m (k, v) ->
            I.Paged_bst.insert t (mk sch k v);
            IntMap.add k v m)
          IntMap.empty ops
      in
      IntMap.for_all
        (fun k v ->
          match I.Paged_bst.search t (key sch k) with
          | Some tup -> val_of sch tup = v
          | None -> false)
        model
      && I.Paged_bst.length t = IntMap.cardinal model
      && I.Paged_bst.check_invariants t)

(* ------------------------------------------------------------------ *)
(* QCheck cross-structure equivalence                                  *)
(* ------------------------------------------------------------------ *)

let qcheck_avl_btree_agree =
  QCheck.Test.make ~name:"AVL and B+-tree agree on any op sequence" ~count:60
    QCheck.(list (pair (int_range 0 100) (int_range 0 1000)))
    (fun ops_list ->
      let sch = schema () in
      let avl = fresh_avl () in
      let bt = fresh_btree ~page_size:64 () in
      List.iter
        (fun (k, v) ->
          if v mod 4 = 0 then begin
            ignore (I.Avl.delete avl (key sch k));
            ignore (I.Btree.delete bt (key sch k))
          end
          else begin
            I.Avl.insert avl (mk sch k v);
            I.Btree.insert bt (mk sch k v)
          end)
        ops_list;
      let dump_avl = ref [] and dump_bt = ref [] in
      I.Avl.iter_in_order avl (fun t -> dump_avl := (key_of sch t, val_of sch t) :: !dump_avl);
      I.Btree.iter_in_order bt (fun t -> dump_bt := (key_of sch t, val_of sch t) :: !dump_bt);
      !dump_avl = !dump_bt
      && I.Avl.check_invariants avl
      && I.Btree.check_invariants bt)

let () =
  Alcotest.run "mmdb_index"
    [
      ( "avl",
        [
          Alcotest.test_case "empty" `Quick test_avl_empty;
          Alcotest.test_case "model-based ops" `Quick
            (model_test (fun () -> avl_ops (fresh_avl ())) 2000 101);
          Alcotest.test_case "height bound" `Quick test_avl_height_bound;
          Alcotest.test_case "duplicate replaces" `Quick
            test_avl_duplicate_replaces;
          Alcotest.test_case "min/max" `Quick test_avl_min_max;
          Alcotest.test_case "scan_from" `Quick test_avl_scan_from;
          Alcotest.test_case "range_scan" `Quick test_avl_range_scan;
          Alcotest.test_case "comparisons ~ log2 n" `Quick
            test_avl_comparison_count_logarithmic;
        ] );
      ( "btree",
        [
          Alcotest.test_case "empty" `Quick test_btree_empty;
          Alcotest.test_case "capacities" `Quick test_btree_capacities;
          Alcotest.test_case "model-based ops" `Quick
            (model_test (fun () -> btree_ops (fresh_btree ~page_size:64 ())) 2000 202);
          Alcotest.test_case "model-based ops (larger pages)" `Quick
            (model_test (fun () -> btree_ops (fresh_btree ~page_size:256 ())) 2000 303);
          Alcotest.test_case "split grows height" `Quick
            test_btree_split_grows_height;
          Alcotest.test_case "sorted bulk" `Quick test_btree_sorted_bulk;
          Alcotest.test_case "delete collapses" `Quick
            test_btree_delete_collapses;
          Alcotest.test_case "scan crosses leaves" `Quick
            test_btree_scan_from_crosses_leaves;
          Alcotest.test_case "range_scan" `Quick test_btree_range_scan;
          Alcotest.test_case "occupancy ~69%" `Quick
            test_btree_random_load_occupancy;
          Alcotest.test_case "comparisons ~ log2 n" `Quick
            test_btree_comparison_count_logarithmic;
        ] );
      ( "pager",
        [
          Alcotest.test_case "no faults when resident" `Quick
            test_pager_no_faults_when_everything_fits;
          Alcotest.test_case "faults under pressure" `Quick
            test_pager_faults_under_pressure;
          Alcotest.test_case "btree node pages" `Quick
            test_pager_btree_one_node_per_page;
        ] );
      ( "paged_bst",
        [
          Alcotest.test_case "basic ops" `Quick test_bst_basic_ops;
          Alcotest.test_case "degenerates on sorted input" `Quick
            test_bst_degenerates_on_sorted_input;
          Alcotest.test_case "footnote: BST >> AVL comparisons" `Quick
            test_bst_vs_avl_comparisons;
          QCheck_alcotest.to_alcotest qcheck_bst_matches_map;
        ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest qcheck_avl_btree_agree ] );
    ]
