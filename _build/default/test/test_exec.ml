(* Tests for Mmdb_exec: run generation, external sort, the four join
   algorithms (checked against a nested-loop oracle), hash tables,
   partitioning, aggregation and projection. *)

module S = Mmdb_storage
module U = Mmdb_util
module E = Mmdb_exec

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* R(k, v) and S(k, w): 16-byte tuples. *)
let r_schema () =
  S.Schema.create ~key:"k"
    [ S.Schema.column "k" S.Schema.Int; S.Schema.column "v" S.Schema.Int ]

let s_schema () =
  S.Schema.create ~key:"k"
    [ S.Schema.column "k" S.Schema.Int; S.Schema.column "w" S.Schema.Int ]

let fresh_disk ?(page_size = 128) () =
  let env = S.Env.create () in
  (env, S.Disk.create ~env ~page_size)

let mk sch k v = S.Tuple.encode sch [ S.Tuple.VInt k; S.Tuple.VInt v ]

let load disk name sch pairs =
  S.Relation.of_tuples ~disk ~name ~schema:sch
    (List.map (fun (k, v) -> mk sch k v) pairs)

let key_of sch t = S.Tuple.get_int sch t 0
let snd_of sch t = S.Tuple.get_int sch t 1

(* Random workload: keys in [0, key_range) so duplicates occur. *)
let random_pairs rng n key_range =
  List.init n (fun i -> (U.Xorshift.int rng key_range, i))

(* The canonical multiset representation of a join result. *)
let join_triples rs ss emit_impl =
  let rsch = S.Relation.schema rs and ssch = S.Relation.schema ss in
  let acc = ref [] in
  let n =
    emit_impl (fun r_tup s_tup ->
        acc :=
          (key_of rsch r_tup, snd_of rsch r_tup, snd_of ssch s_tup) :: !acc)
  in
  checki "emit count matches return" n (List.length !acc);
  List.sort compare !acc

let oracle rs ss =
  join_triples rs ss (fun emit -> E.Nested_loop.join_uncharged rs ss emit)

let check_algo_matches_oracle ?(mem_pages = 8) algo r_pairs s_pairs () =
  let _, disk = fresh_disk () in
  let rs = load disk "R" (r_schema ()) r_pairs in
  let ss = load disk "S" (s_schema ()) s_pairs in
  let expected = oracle rs ss in
  let got =
    join_triples rs ss (fun emit ->
        E.Joiner.run algo ~mem_pages ~fudge:1.2 rs ss emit)
  in
  Alcotest.(check (list (triple int int int)))
    (E.Joiner.name algo ^ " matches oracle")
    expected got

(* ------------------------------------------------------------------ *)
(* Run generation                                                      *)
(* ------------------------------------------------------------------ *)

let run_sorted sch run =
  let prev = ref None in
  let ok = ref true in
  S.Relation.iter_tuples_nocharge run (fun t ->
      (match !prev with
      | Some p -> if S.Tuple.compare_keys sch p t > 0 then ok := false
      | None -> ());
      prev := Some t);
  !ok

let test_run_gen_sorted_and_complete () =
  let _, disk = fresh_disk () in
  let sch = r_schema () in
  let rng = U.Xorshift.create 5 in
  let pairs = random_pairs rng 500 1000 in
  let rel = load disk "R" sch pairs in
  let runs = E.Run_gen.runs ~mem_pages:2 rel in
  checkb "several runs" true (List.length runs > 1);
  List.iter (fun run -> checkb "run sorted" true (run_sorted sch run)) runs;
  let total = List.fold_left (fun a r -> a + S.Relation.ntuples r) 0 runs in
  checki "no tuples lost" 500 total;
  (* Multiset equality with the input. *)
  let input = List.sort compare (List.map fst pairs) in
  let output = ref [] in
  List.iter
    (fun run ->
      S.Relation.iter_tuples_nocharge run (fun t ->
          output := key_of sch t :: !output))
    runs;
  Alcotest.(check (list int)) "same keys" input (List.sort compare !output)

let test_run_gen_sorted_input_one_run () =
  let _, disk = fresh_disk () in
  let sch = r_schema () in
  let pairs = List.init 300 (fun i -> (i, i)) in
  let rel = load disk "R" sch pairs in
  let runs = E.Run_gen.runs ~mem_pages:2 rel in
  (* Replacement selection turns presorted input into a single run. *)
  checki "one run" 1 (List.length runs)

let test_run_gen_average_length () =
  (* Knuth: runs average 2|M| pages on random input. *)
  let _, disk = fresh_disk ~page_size:256 () in
  let sch = r_schema () in
  let rng = U.Xorshift.create 77 in
  let pairs = random_pairs rng 6000 1_000_000 in
  let rel = load disk "R" sch pairs in
  let mem_pages = 3 in
  let runs = E.Run_gen.runs ~mem_pages rel in
  let avg_pages =
    float_of_int (List.fold_left (fun a r -> a + S.Relation.npages r) 0 runs)
    /. float_of_int (List.length runs)
  in
  let expect = E.Run_gen.expected_run_length ~mem_pages in
  checkb
    (Printf.sprintf "avg run %.2f pages within 25%% of %.1f" avg_pages expect)
    true
    (Float.abs (avg_pages -. expect) < 0.25 *. expect)

let test_run_gen_charges_io () =
  let env, disk = fresh_disk () in
  let sch = r_schema () in
  let rng = U.Xorshift.create 9 in
  let rel = load disk "R" sch (random_pairs rng 200 500) in
  let before = env.S.Env.counters.S.Counters.seq_writes in
  let runs = E.Run_gen.runs ~mem_pages:2 rel in
  let run_pages = List.fold_left (fun a r -> a + S.Relation.npages r) 0 runs in
  checki "every run page written sequentially" (before + run_pages)
    env.S.Env.counters.S.Counters.seq_writes

(* ------------------------------------------------------------------ *)
(* External sort                                                       *)
(* ------------------------------------------------------------------ *)

let test_external_sort_sorts () =
  let _, disk = fresh_disk () in
  let sch = r_schema () in
  let rng = U.Xorshift.create 11 in
  let pairs = random_pairs rng 800 2000 in
  let rel = load disk "R" sch pairs in
  let sorted = E.External_sort.sort ~mem_pages:4 rel in
  checkb "output sorted" true (run_sorted sch sorted);
  checki "same cardinality" 800 (S.Relation.ntuples sorted);
  let input = List.sort compare (List.map fst pairs) in
  let out = ref [] in
  S.Relation.iter_tuples_nocharge sorted (fun t -> out := key_of sch t :: !out);
  Alcotest.(check (list int)) "permutation" input (List.sort compare !out)

let test_external_sort_empty () =
  let _, disk = fresh_disk () in
  let rel = load disk "R" (r_schema ()) [] in
  let sorted = E.External_sort.sort ~mem_pages:4 rel in
  checki "empty stays empty" 0 (S.Relation.ntuples sorted)

let test_check_run_count () =
  let _, disk = fresh_disk () in
  let sch = r_schema () in
  let runs =
    List.init 5 (fun i ->
        load disk (Printf.sprintf "r%d" i) sch [ (i, i) ])
  in
  Alcotest.check_raises "too many runs"
    (Invalid_argument
       "External_sort: 5 runs exceed 4 buffer pages (single merge pass \
        assumption violated)") (fun () ->
      E.External_sort.check_run_count ~mem_pages:4 runs)

let test_cursor_merges_in_order () =
  let _, disk = fresh_disk () in
  let sch = r_schema () in
  let run1 = load disk "r1" sch [ (1, 0); (4, 0); (7, 0) ] in
  let run2 = load disk "r2" sch [ (2, 0); (5, 0); (6, 0) ] in
  let run3 = load disk "r3" sch [ (3, 0) ] in
  let c = E.External_sort.cursor_of_runs ~schema:sch [ run1; run2; run3 ] in
  let rec drain acc =
    match E.External_sort.next c with
    | Some t -> drain (key_of sch t :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "merged" [ 1; 2; 3; 4; 5; 6; 7 ] (drain []);
  checkb "exhausted" true (E.External_sort.peek c = None)

(* ------------------------------------------------------------------ *)
(* Hash table                                                          *)
(* ------------------------------------------------------------------ *)

let test_hash_table_basics () =
  let env, _ = fresh_disk () in
  let sch = r_schema () in
  let t = E.Hash_table.create ~env ~schema:sch ~tuples_per_page:7 in
  E.Hash_table.insert t (mk sch 1 10);
  E.Hash_table.insert t (mk sch 1 11);
  E.Hash_table.insert t (mk sch 2 20);
  checki "length" 3 (E.Hash_table.length t);
  checki "data pages" 1 (E.Hash_table.data_pages t);
  let hits = ref [] in
  E.Hash_table.probe t ~probe_schema:(s_schema ()) (mk (s_schema ()) 1 99)
    (fun r -> hits := snd_of sch r :: !hits);
  Alcotest.(check (list int)) "both duplicates" [ 10; 11 ]
    (List.sort compare !hits);
  let misses = ref 0 in
  E.Hash_table.probe t ~probe_schema:(s_schema ()) (mk (s_schema ()) 9 0)
    (fun _ -> incr misses);
  checki "no false hits" 0 !misses

let test_hash_table_memory_pages () =
  let env, _ = fresh_disk () in
  let sch = r_schema () in
  let t = E.Hash_table.create ~env ~schema:sch ~tuples_per_page:10 in
  for i = 1 to 25 do
    E.Hash_table.insert t (mk sch i i)
  done;
  checki "data pages" 3 (E.Hash_table.data_pages t);
  checki "memory pages with F=1.2" 4 (E.Hash_table.memory_pages t ~fudge:1.2)

let test_hash_table_charges () =
  let env, _ = fresh_disk () in
  let sch = r_schema () in
  let t = E.Hash_table.create ~env ~schema:sch ~tuples_per_page:10 in
  let m0 = env.S.Env.counters.S.Counters.moves in
  E.Hash_table.insert t (mk sch 1 1);
  checki "insert charges move" (m0 + 1) env.S.Env.counters.S.Counters.moves;
  let c0 = env.S.Env.counters.S.Counters.comparisons in
  E.Hash_table.probe t ~probe_schema:sch (mk sch 1 0) (fun _ -> ());
  checki "probe charges comp" (c0 + 1) env.S.Env.counters.S.Counters.comparisons

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_partition_compatible () =
  let env, disk = fresh_disk () in
  let rng = U.Xorshift.create 31 in
  let rs = load disk "R" (r_schema ()) (random_pairs rng 300 50) in
  let ss = load disk "S" (s_schema ()) (random_pairs rng 400 50) in
  let hr = E.Hash_fn.create ~env ~schema:(r_schema ()) ~seed:7 in
  let hs = E.Hash_fn.create ~env ~schema:(s_schema ()) ~seed:7 in
  let rb =
    E.Partition.split ~scan:E.Partition.Free ~nbuckets:4 ~hash:hr
      ~write_mode:S.Disk.Rand rs
  in
  let sb =
    E.Partition.split ~scan:E.Partition.Free ~nbuckets:4 ~hash:hs
      ~write_mode:S.Disk.Rand ss
  in
  (* Compatibility: a key appearing in R bucket i never appears in any S
     bucket j <> i. *)
  let bucket_keys buckets sch =
    Array.map
      (fun b ->
        let keys = Hashtbl.create 16 in
        S.Relation.iter_tuples_nocharge b (fun t ->
            Hashtbl.replace keys (key_of sch t) ());
        keys)
      buckets
  in
  let rk = bucket_keys rb (r_schema ()) and sk = bucket_keys sb (s_schema ()) in
  for i = 0 to 3 do
    for j = 0 to 3 do
      if i <> j then
        Hashtbl.iter
          (fun k () ->
            checkb
              (Printf.sprintf "key %d in R[%d] not in S[%d]" k i j)
              false (Hashtbl.mem sk.(j) k))
          rk.(i)
    done
  done;
  (* No tuples lost. *)
  let total a = Array.fold_left (fun acc b -> acc + S.Relation.ntuples b) 0 a in
  checki "R total" 300 (total rb);
  checki "S total" 400 (total sb);
  E.Partition.free rb;
  E.Partition.free sb

let test_partition_fraction_split () =
  let env, disk = fresh_disk () in
  let rng = U.Xorshift.create 41 in
  let rs = load disk "R" (r_schema ()) (random_pairs rng 2000 100_000) in
  let h = E.Hash_fn.create ~env ~schema:(r_schema ()) ~seed:3 in
  let mem, buckets =
    E.Partition.split_fraction ~scan:E.Partition.Free ~q:0.5 ~nbuckets:3
      ~hash:h ~write_mode:S.Disk.Seq rs
  in
  let in_mem = List.length mem in
  let on_disk =
    Array.fold_left (fun acc b -> acc + S.Relation.ntuples b) 0 buckets
  in
  checki "nothing lost" 2000 (in_mem + on_disk);
  checkb
    (Printf.sprintf "about half in memory (%d)" in_mem)
    true
    (in_mem > 800 && in_mem < 1200);
  E.Partition.free buckets

let test_partition_write_mode_charges () =
  let env, disk = fresh_disk () in
  let rng = U.Xorshift.create 43 in
  let rs = load disk "R" (r_schema ()) (random_pairs rng 300 1000) in
  let h = E.Hash_fn.create ~env ~schema:(r_schema ()) ~seed:3 in
  let rw0 = env.S.Env.counters.S.Counters.rand_writes in
  let buckets =
    E.Partition.split ~scan:E.Partition.Free ~nbuckets:4 ~hash:h
      ~write_mode:S.Disk.Rand rs
  in
  let pages =
    Array.fold_left (fun acc b -> acc + S.Relation.npages b) 0 buckets
  in
  checki "random writes = partition pages" (rw0 + pages)
    env.S.Env.counters.S.Counters.rand_writes;
  E.Partition.free buckets

(* ------------------------------------------------------------------ *)
(* Join algorithms vs oracle                                           *)
(* ------------------------------------------------------------------ *)

let small_r = [ (1, 100); (2, 200); (3, 300); (2, 201) ]
let small_s = [ (2, 9); (3, 8); (4, 7); (2, 6) ]

let dup_heavy n =
  (* Every key appears many times on both sides. *)
  List.init n (fun i -> (i mod 5, i))

let rng_pairs seed n range =
  let rng = U.Xorshift.create seed in
  random_pairs rng n range

let algo_cases algo =
  [
    Alcotest.test_case "small fixed" `Quick
      (check_algo_matches_oracle algo small_r small_s);
    Alcotest.test_case "duplicates both sides" `Quick
      (check_algo_matches_oracle algo (dup_heavy 40) (dup_heavy 30));
    Alcotest.test_case "no matches" `Quick
      (check_algo_matches_oracle algo
         [ (1, 1); (2, 2) ]
         [ (3, 3); (4, 4) ]);
    Alcotest.test_case "empty R" `Quick
      (check_algo_matches_oracle algo [] small_s);
    Alcotest.test_case "empty S" `Quick
      (check_algo_matches_oracle algo small_r []);
    Alcotest.test_case "random 500x600" `Quick
      (check_algo_matches_oracle algo (rng_pairs 1 500 120) (rng_pairs 2 600 120));
    Alcotest.test_case "tiny memory" `Quick
      (check_algo_matches_oracle ~mem_pages:3 algo (rng_pairs 3 400 80)
         (rng_pairs 4 500 80));
    Alcotest.test_case "big memory" `Quick
      (check_algo_matches_oracle ~mem_pages:512 algo (rng_pairs 5 300 60)
         (rng_pairs 6 350 60));
  ]

let test_hybrid_skew_forces_recursion () =
  (* All R tuples share one key: every partition attempt puts them in one
     bucket; the recursion must still terminate and be correct. *)
  let r_pairs = List.init 120 (fun i -> (42, i)) in
  let s_pairs = (43, 0) :: List.init 10 (fun i -> (42, 1000 + i)) in
  check_algo_matches_oracle ~mem_pages:3 E.Joiner.Hybrid_hash_join r_pairs
    s_pairs ()

let test_simple_hash_pass_count () =
  checki "A=4" 4 (E.Simple_hash.passes ~mem_pages:3 ~fudge:1.2 ~r_pages:10);
  checki "A=1 when fits" 1
    (E.Simple_hash.passes ~mem_pages:100 ~fudge:1.2 ~r_pages:10)

let test_hybrid_partition_count () =
  (* |R|F <= m -> B = 0. *)
  checki "B=0" 0 (E.Hybrid_hash.partitions ~mem_pages:13 ~fudge:1.2 ~r_pages:10);
  checkb "B>=1 under pressure" true
    (E.Hybrid_hash.partitions ~mem_pages:4 ~fudge:1.2 ~r_pages:10 >= 1);
  let q = E.Hybrid_hash.q_fraction ~mem_pages:13 ~fudge:1.2 ~r_pages:10 in
  checkb "q=1 when fits" true (q = 1.0)

let test_joiner_names () =
  List.iter
    (fun a ->
      checkb "roundtrip" true (E.Joiner.of_name (E.Joiner.name a) = a))
    (E.Joiner.Nested_loop_join :: E.Joiner.all)

let test_key_width_mismatch_rejected () =
  let _, disk = fresh_disk () in
  let narrow =
    S.Schema.create ~key:"k" [ S.Schema.column ~width:4 "k" S.Schema.Int ]
  in
  let rs = load disk "R" (r_schema ()) [ (1, 1) ] in
  let ss =
    S.Relation.of_tuples ~disk ~name:"S" ~schema:narrow
      [ S.Tuple.encode narrow [ S.Tuple.VInt 1 ] ]
  in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "join: key widths differ between relations") (fun () ->
      ignore (E.Hybrid_hash.join ~mem_pages:8 ~fudge:1.2 rs ss (fun _ _ -> ())))

(* ------------------------------------------------------------------ *)
(* QCheck: all four algorithms agree with the oracle                   *)
(* ------------------------------------------------------------------ *)

let qcheck_all_algos_agree =
  QCheck.Test.make ~name:"all join algorithms agree with nested loop"
    ~count:40
    QCheck.(
      triple
        (list_of_size Gen.(int_range 0 120) (int_range 0 30))
        (list_of_size Gen.(int_range 0 120) (int_range 0 30))
        (int_range 3 32))
    (fun (r_keys, s_keys, mem_pages) ->
      let _, disk = fresh_disk () in
      let rs =
        load disk "R" (r_schema ()) (List.mapi (fun i k -> (k, i)) r_keys)
      in
      let ss =
        load disk "S" (s_schema ()) (List.mapi (fun i k -> (k, i)) s_keys)
      in
      let expected = oracle rs ss in
      List.for_all
        (fun algo ->
          join_triples rs ss (fun emit ->
              E.Joiner.run algo ~mem_pages ~fudge:1.2 rs ss emit)
          = expected)
        E.Joiner.all)

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let agg_input () =
  [ (1, 10); (2, 5); (1, 30); (3, 7); (2, 15); (1, 20) ]

let decode_agg out =
  let sch = S.Relation.schema out in
  let rows = ref [] in
  S.Relation.iter_tuples_nocharge out (fun t ->
      let vals =
        List.map
          (function S.Tuple.VInt v -> v | S.Tuple.VStr _ -> assert false)
          (S.Tuple.decode sch t)
      in
      rows := vals :: !rows);
  List.sort compare !rows

let test_one_pass_aggregate () =
  let _, disk = fresh_disk () in
  let rel = load disk "T" (r_schema ()) (agg_input ()) in
  let out =
    E.Aggregate.one_pass rel
      [ E.Aggregate.Count; E.Aggregate.Sum "v"; E.Aggregate.Min "v";
        E.Aggregate.Max "v"; E.Aggregate.Avg "v" ]
  in
  Alcotest.(check (list (list int)))
    "groups"
    [
      [ 1; 3; 60; 10; 30; 20 ] (* k=1: count 3, sum 60, min 10, max 30, avg 20 *);
      [ 2; 2; 20; 5; 15; 10 ];
      [ 3; 1; 7; 7; 7; 7 ];
    ]
    (decode_agg out)

let test_hybrid_aggregate_matches_one_pass () =
  let _, disk = fresh_disk () in
  let rng = U.Xorshift.create 55 in
  let pairs = random_pairs rng 1500 200 in
  let rel = load disk "T" (r_schema ()) pairs in
  let specs = [ E.Aggregate.Count; E.Aggregate.Sum "v" ] in
  let a = E.Aggregate.one_pass rel specs in
  let b = E.Aggregate.hybrid ~mem_pages:3 ~fudge:1.2 rel specs in
  Alcotest.(check (list (list int)))
    "hybrid = one-pass" (decode_agg a) (decode_agg b)

let test_aggregate_group_count () =
  let _, disk = fresh_disk () in
  let rel = load disk "T" (r_schema ()) (agg_input ()) in
  checki "3 groups" 3 (E.Aggregate.group_count rel)

let test_aggregate_empty () =
  let _, disk = fresh_disk () in
  let rel = load disk "T" (r_schema ()) [] in
  let out = E.Aggregate.one_pass rel [ E.Aggregate.Count ] in
  checki "no groups" 0 (S.Relation.ntuples out)

let test_aggregate_result_schema () =
  let sch =
    E.Aggregate.result_schema (r_schema ())
      [ E.Aggregate.Count; E.Aggregate.Sum "v" ]
  in
  checki "3 columns" 3 (List.length (S.Schema.columns sch));
  checki "keyed on group" 0 (S.Schema.key_index sch)

let test_sort_based_aggregate_matches_hash () =
  let _, disk = fresh_disk () in
  let rng = U.Xorshift.create 91 in
  let pairs = random_pairs rng 1200 150 in
  let rel = load disk "T" (r_schema ()) pairs in
  let specs =
    [ E.Aggregate.Count; E.Aggregate.Sum "v"; E.Aggregate.Min "v";
      E.Aggregate.Max "v" ]
  in
  let hash_out = E.Aggregate.one_pass rel specs in
  let sort_out = E.Aggregate.sort_based ~mem_pages:4 rel specs in
  Alcotest.(check (list (list int)))
    "sort-based = hash" (decode_agg hash_out) (decode_agg sort_out)

let test_sort_based_aggregate_costs_more () =
  (* Section 3.9's recommendation quantified: with the result fitting in
     memory, one-pass hashing beats sort-group. *)
  let env, disk = fresh_disk ~page_size:512 () in
  let rng = U.Xorshift.create 92 in
  let rel = load disk "T" (r_schema ()) (random_pairs rng 5000 100) in
  let time f =
    let t0 = S.Env.elapsed env in
    let out = f () in
    S.Relation.free_pages out;
    S.Env.elapsed env -. t0
  in
  let hash_t =
    time (fun () -> E.Aggregate.one_pass rel [ E.Aggregate.Count ])
  in
  let sort_t =
    time (fun () -> E.Aggregate.sort_based ~mem_pages:8 rel [ E.Aggregate.Count ])
  in
  checkb
    (Printf.sprintf "hash %.3fs < sort %.3fs" hash_t sort_t)
    true (hash_t < sort_t)

(* ------------------------------------------------------------------ *)
(* Semi/anti join and division                                         *)
(* ------------------------------------------------------------------ *)

let test_semi_anti_join () =
  let _, disk = fresh_disk () in
  let rs = load disk "R" (r_schema ()) [ (1, 10); (2, 20); (2, 21); (3, 30) ] in
  let ss = load disk "S" (s_schema ()) [ (2, 0); (4, 0) ] in
  let keys rel =
    let sch = S.Relation.schema rel in
    let acc = ref [] in
    S.Relation.iter_tuples_nocharge rel (fun t ->
        acc := (key_of sch t, snd_of sch t) :: !acc);
    List.sort compare !acc
  in
  Alcotest.(check (list (pair int int)))
    "semi keeps matching R tuples (with duplicates)"
    [ (2, 20); (2, 21) ]
    (keys (E.Semi_join.semi rs ss));
  Alcotest.(check (list (pair int int)))
    "anti keeps the rest"
    [ (1, 10); (3, 30) ]
    (keys (E.Semi_join.anti rs ss))

let qcheck_semi_anti_partition_r =
  QCheck.Test.make ~name:"semi + anti partition R" ~count:80
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 80) (int_range 0 25))
        (list_of_size Gen.(int_range 0 40) (int_range 0 25)))
    (fun (rk, sk) ->
      let _, disk = fresh_disk () in
      let rs = load disk "R" (r_schema ()) (List.mapi (fun i k -> (k, i)) rk) in
      let ss = load disk "S" (s_schema ()) (List.map (fun k -> (k, 0)) sk) in
      let count rel = S.Relation.ntuples rel in
      let semi = E.Semi_join.semi rs ss and anti = E.Semi_join.anti rs ss in
      count semi + count anti = List.length rk
      && (let sch = S.Relation.schema semi in
          let ok = ref true in
          S.Relation.iter_tuples_nocharge semi (fun t ->
              if not (List.mem (S.Tuple.get_int sch t 0) sk) then ok := false);
          S.Relation.iter_tuples_nocharge anti (fun t ->
              if List.mem (S.Tuple.get_int sch t 0) sk then ok := false);
          !ok))

let test_index_join_matches_oracle () =
  let env, disk = fresh_disk () in
  let rng = U.Xorshift.create 97 in
  (* Inner: unique keys (an indexed primary key). *)
  let inner_pairs = List.init 200 (fun i -> (i, i * 3)) in
  let inner = load disk "I" (r_schema ()) inner_pairs in
  let outer = load disk "O" (s_schema ()) (random_pairs rng 300 400) in
  let expected = oracle inner outer in
  List.iter
    (fun kind ->
      let ix =
        match kind with
        | `Btree ->
          let t =
            Mmdb_index.Btree.create ~env ~schema:(r_schema ()) ~page_size:256 ()
          in
          S.Relation.iter_tuples_nocharge inner (Mmdb_index.Btree.insert t);
          E.Index_join.Btree_ix t
        | `Avl ->
          let t = Mmdb_index.Avl.create ~env ~schema:(r_schema ()) () in
          S.Relation.iter_tuples_nocharge inner (Mmdb_index.Avl.insert t);
          E.Index_join.Avl_ix t
      in
      let got =
        join_triples inner outer (fun emit -> E.Index_join.join ix outer emit)
      in
      Alcotest.(check (list (triple int int int)))
        "index join matches oracle" expected got)
    [ `Btree; `Avl ]

let test_index_join_cheap_for_small_outer () =
  (* Small outer vs big indexed inner: probes cost ~log n comparisons
     each, far below hybrid hash's full scan of the inner. *)
  let env, disk = fresh_disk ~page_size:512 () in
  let inner_pairs = List.init 20_000 (fun i -> (i, i)) in
  let inner = load disk "I" (r_schema ()) inner_pairs in
  let rng = U.Xorshift.create 98 in
  let outer =
    load disk "O" (s_schema ())
      (List.init 50 (fun _ -> (U.Xorshift.int rng 20_000, 0)))
  in
  let bt = Mmdb_index.Btree.create ~env ~schema:(r_schema ()) ~page_size:512 () in
  S.Relation.iter_tuples_nocharge inner (Mmdb_index.Btree.insert bt);
  let time f =
    let t0 = S.Env.elapsed env in
    ignore (f ());
    S.Env.elapsed env -. t0
  in
  let inl =
    time (fun () ->
        E.Index_join.join (E.Index_join.Btree_ix bt) outer (fun _ _ -> ()))
  in
  let hybrid =
    time (fun () ->
        E.Hybrid_hash.join ~mem_pages:16 ~fudge:1.2 outer inner (fun _ _ -> ()))
  in
  checkb
    (Printf.sprintf "index join %.4fs beats hybrid %.4fs for tiny outer" inl
       hybrid)
    true (inl < hybrid)

(* supplies(supplier, part) / parts(part) *)
let test_division_suppliers_all_parts () =
  let _, disk = fresh_disk () in
  let supplies_schema =
    S.Schema.create ~key:"supplier"
      [ S.Schema.column "supplier" S.Schema.Int; S.Schema.column "part" S.Schema.Int ]
  in
  let parts_schema =
    S.Schema.create ~key:"part" [ S.Schema.column "part" S.Schema.Int ]
  in
  let supplies =
    S.Relation.of_tuples ~disk ~name:"supplies" ~schema:supplies_schema
      (List.map
         (fun (s, p) ->
           S.Tuple.encode supplies_schema [ S.Tuple.VInt s; S.Tuple.VInt p ])
         [
           (1, 10); (1, 11); (1, 12) (* supplier 1 supplies all *);
           (2, 10); (2, 12) (* supplier 2 misses part 11 *);
           (3, 10); (3, 11); (3, 12); (3, 99) (* 3 supplies all + extra *);
           (4, 99) (* 4 supplies none of the asked parts *);
         ])
  in
  let parts =
    S.Relation.of_tuples ~disk ~name:"parts" ~schema:parts_schema
      (List.map (fun p -> S.Tuple.encode parts_schema [ S.Tuple.VInt p ])
         [ 10; 11; 12 ])
  in
  let quotient =
    E.Division.divide ~mem_pages:8 ~fudge:1.2 ~divisor_col:"part" supplies
      parts
  in
  let sch = S.Relation.schema quotient in
  let got = ref [] in
  S.Relation.iter_tuples_nocharge quotient (fun t ->
      got := S.Tuple.get_int sch t 0 :: !got);
  Alcotest.(check (list int)) "suppliers of all parts" [ 1; 3 ]
    (List.sort compare !got)

let test_division_empty_divisor () =
  let _, disk = fresh_disk () in
  let rs = load disk "R" (r_schema ()) [ (1, 5); (2, 5); (1, 6) ] in
  let ss = load disk "S" (s_schema ()) [] in
  (* Divide R(k,v) by S on v: empty divisor -> all distinct k groups. *)
  let q = E.Division.divide ~mem_pages:8 ~fudge:1.2 ~divisor_col:"v" rs ss in
  checki "all quotient groups" 2 (S.Relation.ntuples q)

let qcheck_division_matches_model =
  QCheck.Test.make ~name:"division agrees with a list model" ~count:60
    QCheck.(
      triple
        (list_of_size Gen.(int_range 0 120)
           (pair (int_range 0 12) (int_range 0 8)))
        (list_of_size Gen.(int_range 0 6) (int_range 0 8))
        (int_range 2 24))
    (fun (rp, sk, mem_pages) ->
      let _, disk = fresh_disk () in
      let rs = load disk "R" (r_schema ()) rp in
      let sset = List.sort_uniq compare sk in
      let ss = load disk "S" (s_schema ()) (List.map (fun k -> (k, 0)) sset) in
      (* Model: k qualifies iff its v-set covers sset.  NOTE: R's key is k,
         divisor column is v. *)
      let expected =
        List.sort_uniq compare (List.map fst rp)
        |> List.filter (fun k ->
               let vs = List.filter_map (fun (k', v) -> if k' = k then Some v else None) rp in
               List.for_all (fun s -> List.mem s vs) sset)
      in
      let q =
        E.Division.divide ~mem_pages ~fudge:1.2 ~divisor_col:"v" rs ss
      in
      let sch = S.Relation.schema q in
      let got = ref [] in
      S.Relation.iter_tuples_nocharge q (fun t ->
          got := S.Tuple.get_int sch t 0 :: !got);
      List.sort compare !got = expected)

(* ------------------------------------------------------------------ *)
(* Projection                                                          *)
(* ------------------------------------------------------------------ *)

let test_projection_distinct () =
  let _, disk = fresh_disk () in
  let rel =
    load disk "T" (r_schema ())
      [ (1, 10); (1, 10); (2, 10); (1, 20); (2, 10) ]
  in
  let out = E.Projection.distinct ~mem_pages:4 ~fudge:1.2 ~cols:[ "k"; "v" ] rel in
  let sch = S.Relation.schema out in
  let rows = ref [] in
  S.Relation.iter_tuples_nocharge out (fun t ->
      rows := (S.Tuple.get_int sch t 0, S.Tuple.get_int sch t 1) :: !rows);
  Alcotest.(check (list (pair int int)))
    "distinct pairs"
    [ (1, 10); (1, 20); (2, 10) ]
    (List.sort compare !rows)

let test_projection_single_column () =
  let _, disk = fresh_disk () in
  let rng = U.Xorshift.create 66 in
  let rel = load disk "T" (r_schema ()) (random_pairs rng 1000 37) in
  let out = E.Projection.distinct ~mem_pages:2 ~fudge:1.2 ~cols:[ "k" ] rel in
  checki "37 distinct keys" 37 (S.Relation.ntuples out);
  let sch = S.Relation.schema out in
  checki "one column" 1 (List.length (S.Schema.columns sch))

let test_projection_spills_match_in_memory () =
  let _, disk = fresh_disk () in
  let rng = U.Xorshift.create 67 in
  let pairs = random_pairs rng 2000 500 in
  let rel = load disk "T" (r_schema ()) pairs in
  let small = E.Projection.distinct ~mem_pages:2 ~fudge:1.2 ~cols:[ "k" ] rel in
  let large = E.Projection.distinct ~mem_pages:4096 ~fudge:1.2 ~cols:[ "k" ] rel in
  let keys out =
    let sch = S.Relation.schema out in
    let acc = ref [] in
    S.Relation.iter_tuples_nocharge out (fun t ->
        acc := S.Tuple.get_int sch t 0 :: !acc);
    List.sort compare !acc
  in
  Alcotest.(check (list int)) "same result" (keys large) (keys small)

let test_sort_distinct_matches_hash () =
  let _, disk = fresh_disk () in
  let rng = U.Xorshift.create 93 in
  let pairs = random_pairs rng 1500 60 in
  let rel = load disk "T" (r_schema ()) pairs in
  let dump out =
    let sch = S.Relation.schema out in
    let acc = ref [] in
    S.Relation.iter_tuples_nocharge out (fun t ->
        acc := (S.Tuple.get_int sch t 0, S.Tuple.get_int sch t 1) :: !acc);
    List.sort compare !acc
  in
  let hash_out =
    E.Projection.distinct ~mem_pages:4 ~fudge:1.2 ~cols:[ "k"; "v" ] rel
  in
  let sort_out =
    E.Projection.sort_distinct ~mem_pages:4 ~cols:[ "k"; "v" ] rel
  in
  Alcotest.(check (list (pair int int)))
    "sort = hash projection" (dump hash_out) (dump sort_out)

let test_projection_unknown_column () =
  let _, disk = fresh_disk () in
  let rel = load disk "T" (r_schema ()) [ (1, 1) ] in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Projection: unknown column zz") (fun () ->
      ignore (E.Projection.distinct ~mem_pages:4 ~fudge:1.2 ~cols:[ "zz" ] rel))

(* ------------------------------------------------------------------ *)
(* Op stats                                                            *)
(* ------------------------------------------------------------------ *)

let test_op_stats_measure () =
  let env, disk = fresh_disk () in
  let rng = U.Xorshift.create 71 in
  let rs = load disk "R" (r_schema ()) (random_pairs rng 200 40) in
  let ss = load disk "S" (s_schema ()) (random_pairs rng 200 40) in
  let stats =
    E.Joiner.run_measured E.Joiner.Hybrid_hash_join ~mem_pages:4 ~fudge:1.2 rs
      ss
  in
  checkb "output counted" true (stats.E.Op_stats.output_tuples > 0);
  checkb "time charged" true (stats.E.Op_stats.seconds > 0.0);
  checkb "hashes counted" true
    (stats.E.Op_stats.counters.S.Counters.hashes > 0);
  (* A second measurement sees only its own delta. *)
  let s2 =
    E.Joiner.run_measured E.Joiner.Hybrid_hash_join ~mem_pages:4 ~fudge:1.2 rs
      ss
  in
  checki "same output on rerun" stats.E.Op_stats.output_tuples
    s2.E.Op_stats.output_tuples;
  ignore env

(* ------------------------------------------------------------------ *)
(* Empirical cost sanity: measured simulated times follow the model's   *)
(* qualitative ordering.                                                *)
(* ------------------------------------------------------------------ *)

let test_measured_ordering_small_memory () =
  let _, disk = fresh_disk ~page_size:256 () in
  let rng = U.Xorshift.create 81 in
  let n = 3000 in
  let rs = load disk "R" (r_schema ()) (random_pairs rng n 5000) in
  let ss = load disk "S" (s_schema ()) (random_pairs rng n 5000) in
  (* |R| = 3000/15 = 200 pages; memory 20 pages -> ratio ~0.08. *)
  let measure algo =
    (E.Joiner.run_measured algo ~mem_pages:20 ~fudge:1.2 rs ss)
      .E.Op_stats.seconds
  in
  let hybrid = measure E.Joiner.Hybrid_hash_join in
  let grace = measure E.Joiner.Grace_hash_join in
  let simple = measure E.Joiner.Simple_hash_join in
  checkb
    (Printf.sprintf "hybrid (%.2fs) <= grace (%.2fs)" hybrid grace)
    true (hybrid <= grace);
  checkb
    (Printf.sprintf "hybrid (%.2fs) < simple (%.2fs) at small memory" hybrid
       simple)
    true (hybrid < simple)

let () =
  Alcotest.run "mmdb_exec"
    [
      ( "run_gen",
        [
          Alcotest.test_case "sorted & complete" `Quick
            test_run_gen_sorted_and_complete;
          Alcotest.test_case "sorted input -> 1 run" `Quick
            test_run_gen_sorted_input_one_run;
          Alcotest.test_case "avg length ~ 2M" `Quick
            test_run_gen_average_length;
          Alcotest.test_case "charges seq writes" `Quick
            test_run_gen_charges_io;
        ] );
      ( "external_sort",
        [
          Alcotest.test_case "sorts" `Quick test_external_sort_sorts;
          Alcotest.test_case "empty" `Quick test_external_sort_empty;
          Alcotest.test_case "run count check" `Quick test_check_run_count;
          Alcotest.test_case "cursor merge" `Quick test_cursor_merges_in_order;
        ] );
      ( "hash_table",
        [
          Alcotest.test_case "basics" `Quick test_hash_table_basics;
          Alcotest.test_case "memory pages" `Quick test_hash_table_memory_pages;
          Alcotest.test_case "charges" `Quick test_hash_table_charges;
        ] );
      ( "partition",
        [
          Alcotest.test_case "compatible partitions" `Quick
            test_partition_compatible;
          Alcotest.test_case "fraction split" `Quick
            test_partition_fraction_split;
          Alcotest.test_case "write mode charges" `Quick
            test_partition_write_mode_charges;
        ] );
      ("join: sort-merge", algo_cases E.Joiner.Sort_merge_join);
      ("join: simple hash", algo_cases E.Joiner.Simple_hash_join);
      ("join: grace hash", algo_cases E.Joiner.Grace_hash_join);
      ("join: hybrid hash", algo_cases E.Joiner.Hybrid_hash_join);
      ( "join: misc",
        [
          Alcotest.test_case "hybrid skew recursion" `Quick
            test_hybrid_skew_forces_recursion;
          Alcotest.test_case "simple pass count" `Quick
            test_simple_hash_pass_count;
          Alcotest.test_case "hybrid partition count" `Quick
            test_hybrid_partition_count;
          Alcotest.test_case "joiner names" `Quick test_joiner_names;
          Alcotest.test_case "key width mismatch" `Quick
            test_key_width_mismatch_rejected;
          QCheck_alcotest.to_alcotest qcheck_all_algos_agree;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "one pass" `Quick test_one_pass_aggregate;
          Alcotest.test_case "hybrid matches one-pass" `Quick
            test_hybrid_aggregate_matches_one_pass;
          Alcotest.test_case "group count" `Quick test_aggregate_group_count;
          Alcotest.test_case "empty" `Quick test_aggregate_empty;
          Alcotest.test_case "result schema" `Quick
            test_aggregate_result_schema;
          Alcotest.test_case "sort-based matches hash" `Quick
            test_sort_based_aggregate_matches_hash;
          Alcotest.test_case "hash beats sort (3.9)" `Quick
            test_sort_based_aggregate_costs_more;
        ] );
      ( "semi/anti/division",
        [
          Alcotest.test_case "index join vs oracle" `Quick
            test_index_join_matches_oracle;
          Alcotest.test_case "index join cheap for small outer" `Quick
            test_index_join_cheap_for_small_outer;
          Alcotest.test_case "semi & anti" `Quick test_semi_anti_join;
          QCheck_alcotest.to_alcotest qcheck_semi_anti_partition_r;
          Alcotest.test_case "suppliers of all parts" `Quick
            test_division_suppliers_all_parts;
          Alcotest.test_case "empty divisor" `Quick test_division_empty_divisor;
          QCheck_alcotest.to_alcotest qcheck_division_matches_model;
        ] );
      ( "projection",
        [
          Alcotest.test_case "distinct" `Quick test_projection_distinct;
          Alcotest.test_case "single column" `Quick
            test_projection_single_column;
          Alcotest.test_case "spill matches in-memory" `Quick
            test_projection_spills_match_in_memory;
          Alcotest.test_case "unknown column" `Quick
            test_projection_unknown_column;
          Alcotest.test_case "sort-distinct matches hash" `Quick
            test_sort_distinct_matches_hash;
        ] );
      ( "stats & ordering",
        [
          Alcotest.test_case "op stats" `Quick test_op_stats_measure;
          Alcotest.test_case "measured ordering (small memory)" `Quick
            test_measured_ordering_small_memory;
        ] );
    ]
