(* End-to-end system test: random sequences of DDL/DML/queries (and
   save/load round-trips) against the Db facade, checked after every step
   against a simple in-memory model.  This exercises the whole stack —
   SQL parser, planner, operators, indexes, statistics, persistence —
   under realistic interleavings. *)

module M = Mmdb
module S = Mmdb_storage
module U = Mmdb_util

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Model: table name -> rows (list of int lists; schemas here are
   all-integer for simplicity — string columns are covered elsewhere). *)
type model = (string, int list list) Hashtbl.t

let table_pool = [ "alpha"; "beta"; "gamma" ]

(* Each table has 3 int columns c0 (key), c1, c2. *)
let schema () =
  S.Schema.create ~key:"c0"
    [
      S.Schema.column "c0" S.Schema.Int;
      S.Schema.column "c1" S.Schema.Int;
      S.Schema.column "c2" S.Schema.Int;
    ]

let dump_table db name =
  List.sort compare
    (List.map
       (List.map (function
         | S.Tuple.VInt v -> v
         | S.Tuple.VStr _ -> Alcotest.fail "unexpected string"))
       (M.Db.sql db ("SELECT * FROM " ^ name)))

let check_consistent step db (model : model) =
  Hashtbl.iter
    (fun name rows ->
      let got = dump_table db name in
      let want = List.sort compare rows in
      if got <> want then
        Alcotest.fail
          (Printf.sprintf "step %d: table %s diverged (%d db rows vs %d model)"
             step name (List.length got) (List.length want)))
    model

let run_random_ops ~seed ~steps () =
  let rng = U.Xorshift.create seed in
  let db = ref (M.Db.create ()) in
  let model : model = Hashtbl.create 4 in
  let existing () = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
  let pick_table () =
    match existing () with
    | [] -> None
    | ts -> Some (List.nth ts (U.Xorshift.int rng (List.length ts)))
  in
  let next_key = ref 0 in
  for step = 1 to steps do
    let roll = U.Xorshift.int rng 100 in
    (if roll < 8 then begin
       (* create table *)
       let candidates =
         List.filter (fun t -> not (Hashtbl.mem model t)) table_pool
       in
       match candidates with
       | [] -> ()
       | cs ->
         let name = List.nth cs (U.Xorshift.int rng (List.length cs)) in
         M.Db.create_table !db ~name ~schema:(schema ());
         Hashtbl.replace model name [];
         (* Sometimes index it. *)
         if U.Xorshift.bool rng then
           M.Db.create_index !db ~table:name
             (if U.Xorshift.bool rng then M.Db.Avl_index else M.Db.Btree_index)
     end
     else if roll < 12 then begin
       (* drop table *)
       match pick_table () with
       | None -> ()
       | Some name ->
         (match M.Db.execute !db ("DROP TABLE " ^ name) with
         | M.Db.Affected _ -> ()
         | M.Db.Rows _ -> Alcotest.fail "drop returned rows");
         Hashtbl.remove model name
     end
     else if roll < 45 then begin
       (* insert a few rows *)
       match pick_table () with
       | None -> ()
       | Some name ->
         let n = 1 + U.Xorshift.int rng 5 in
         let rows =
           List.init n (fun _ ->
               incr next_key;
               [ !next_key; U.Xorshift.int rng 10; U.Xorshift.int rng 100 ])
         in
         let values =
           String.concat ", "
             (List.map
                (fun row ->
                  "(" ^ String.concat ", " (List.map string_of_int row) ^ ")")
                rows)
         in
         (match
            M.Db.execute !db
              (Printf.sprintf "INSERT INTO %s VALUES %s" name values)
          with
         | M.Db.Affected k -> checki "insert count" n k
         | M.Db.Rows _ -> Alcotest.fail "insert returned rows");
         Hashtbl.replace model name (rows @ Hashtbl.find model name)
     end
     else if roll < 60 then begin
       (* delete where c1 = x *)
       match pick_table () with
       | None -> ()
       | Some name ->
         let x = U.Xorshift.int rng 10 in
         let before = Hashtbl.find model name in
         let keep = List.filter (fun row -> List.nth row 1 <> x) before in
         (match
            M.Db.execute !db
              (Printf.sprintf "DELETE FROM %s WHERE c1 = %d" name x)
          with
         | M.Db.Affected k ->
           checki "delete count" (List.length before - List.length keep) k
         | M.Db.Rows _ -> Alcotest.fail "delete returned rows");
         Hashtbl.replace model name keep
     end
     else if roll < 72 then begin
       (* update c2 where c1 = x *)
       match pick_table () with
       | None -> ()
       | Some name ->
         let x = U.Xorshift.int rng 10 in
         let v = U.Xorshift.int rng 1000 in
         let before = Hashtbl.find model name in
         let updated =
           List.map
             (fun row ->
               if List.nth row 1 = x then
                 [ List.nth row 0; List.nth row 1; v ]
               else row)
             before
         in
         (match
            M.Db.execute !db
              (Printf.sprintf "UPDATE %s SET c2 = %d WHERE c1 = %d" name v x)
          with
         | M.Db.Affected _ -> ()
         | M.Db.Rows _ -> Alcotest.fail "update returned rows");
         Hashtbl.replace model name updated
     end
     else if roll < 90 then begin
       (* queries: filter / aggregate / order, compared to the model *)
       match pick_table () with
       | None -> ()
       | Some name -> (
         let rows = Hashtbl.find model name in
         match U.Xorshift.int rng 3 with
         | 0 ->
           let x = U.Xorshift.int rng 10 in
           let got =
             List.length
               (M.Db.sql !db
                  (Printf.sprintf "SELECT * FROM %s WHERE c1 >= %d" name x))
           in
           checki
             (Printf.sprintf "step %d filter count" step)
             (List.length (List.filter (fun r -> List.nth r 1 >= x) rows))
             got
         | 1 ->
           let got =
             M.Db.sql !db
               (Printf.sprintf
                  "SELECT c1, COUNT(*), SUM(c2) FROM %s GROUP BY c1" name)
           in
           let expect_groups =
             List.sort_uniq compare (List.map (fun r -> List.nth r 1) rows)
           in
           checki
             (Printf.sprintf "step %d group count" step)
             (List.length expect_groups) (List.length got)
         | _ ->
           let got =
             M.Db.sql !db
               (Printf.sprintf "SELECT c0 FROM %s ORDER BY c0 DESC" name)
           in
           let keys =
             List.map
               (fun row ->
                 match row with
                 | [ S.Tuple.VInt v ] -> v
                 | _ -> Alcotest.fail "bad row")
               got
           in
           let expect =
             List.rev (List.sort compare (List.map (fun r -> List.nth r 0) rows))
           in
           Alcotest.(check (list int))
             (Printf.sprintf "step %d order" step)
             expect keys)
     end
     else begin
       (* save / load round-trip: the database must survive intact. *)
       let path = Filename.temp_file "mmdb_integ" ".db" in
       Fun.protect
         ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
         (fun () ->
           M.Db.save !db path;
           db := M.Db.load path)
     end);
    if step mod 10 = 0 then check_consistent step !db model
  done;
  check_consistent steps !db model;
  checkb "ran to completion" true true

let () =
  Alcotest.run "mmdb_integration"
    [
      ( "random system workloads",
        [
          Alcotest.test_case "seed 1" `Quick (run_random_ops ~seed:1 ~steps:200);
          Alcotest.test_case "seed 2" `Quick (run_random_ops ~seed:2 ~steps:200);
          Alcotest.test_case "seed 3" `Quick (run_random_ops ~seed:3 ~steps:200);
          Alcotest.test_case "seed 4 (long)" `Slow
            (run_random_ops ~seed:4 ~steps:600);
        ] );
    ]
