examples/join_showdown.ml: List Mmdb_exec Mmdb_storage Mmdb_util Printf
