examples/quickstart.ml: List Mmdb Mmdb_exec Mmdb_planner Mmdb_storage Printf
