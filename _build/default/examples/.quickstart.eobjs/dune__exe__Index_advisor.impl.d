examples/index_advisor.ml: Array Format List Mmdb_index Mmdb_model Mmdb_storage Mmdb_util Printf
