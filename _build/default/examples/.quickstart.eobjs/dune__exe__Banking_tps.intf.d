examples/banking_tps.mli:
