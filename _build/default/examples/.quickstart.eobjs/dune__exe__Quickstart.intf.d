examples/quickstart.mli:
