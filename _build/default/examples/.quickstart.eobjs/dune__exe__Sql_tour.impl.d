examples/sql_tour.ml: List Mmdb Mmdb_storage Mmdb_util Printf String
