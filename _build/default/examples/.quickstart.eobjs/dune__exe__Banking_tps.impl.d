examples/banking_tps.ml: List Mmdb Mmdb_recovery Mmdb_util Printf
