examples/join_showdown.mli:
