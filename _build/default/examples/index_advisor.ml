(* Index advisor: the Section 2 decision.  Given a relation's shape and a
   machine's memory, should the keyed access path be an AVL tree or a
   B+-tree?  Uses the paper's analytic model, then validates the
   recommendation empirically on the real structures with a buffer pool.

   Run with: dune exec examples/index_advisor.exe *)

module U = Mmdb_util
module S = Mmdb_storage
module I = Mmdb_index
module AM = Mmdb_model.Access_model

let () =
  let base = { AM.default with AM.r_tuples = 2_000_000; AM.z = 20.0; AM.y = 0.8 } in
  Printf.printf "relation: %s\n\n" (Format.asprintf "%a" AM.pp base);
  let s = AM.avl_pages base in
  let table =
    U.Tablefmt.create
      [ "memory pages"; "fraction of AVL"; "cost(AVL)"; "cost(B+)"; "advice" ]
  in
  List.iter
    (fun frac ->
      let m = int_of_float (frac *. float_of_int s) in
      let avl = AM.avl_random_cost base ~m in
      let bt = AM.btree_random_cost base ~m in
      U.Tablefmt.add_row table
        [
          U.Tablefmt.cell_int m;
          U.Tablefmt.cell_float frac;
          U.Tablefmt.cell_float ~decimals:1 avl;
          U.Tablefmt.cell_float ~decimals:1 bt;
          (if avl < bt then "AVL tree" else "B+-tree");
        ])
    [ 0.1; 0.3; 0.5; 0.7; 0.9; 0.95; 0.99; 1.0 ];
  U.Tablefmt.print table;
  Printf.printf
    "\ncrossover: the AVL tree wins only once %.1f%% of its structure is \
     memory-resident (Table 1's conclusion: B+-trees stay preferred below \
     80-90%% residency).\n\n"
    (100.0 *. AM.crossover_h base);

  (* Empirical validation on a smaller instance: measure simulated lookup
     cost with each structure behind a buffer pool. *)
  print_endline "-- empirical check (50,000 tuples, random replacement) --\n";
  let schema =
    S.Schema.create ~key:"k"
      [
        S.Schema.column "k" S.Schema.Int;
        S.Schema.column ~width:32 "pad" S.Schema.Fixed_string;
      ]
  in
  let n = 50_000 in
  let keys = Array.init n (fun i -> i) in
  U.Xorshift.shuffle (U.Xorshift.create 31) keys;
  let table = U.Tablefmt.create [ "residency"; "AVL faults/lkp"; "B+ faults/lkp"; "advice" ] in
  List.iter
    (fun h ->
      (* Build AVL. *)
      let env_a = S.Env.create () in
      let avl = I.Avl.create ~env:env_a ~schema () in
      Array.iter
        (fun k -> I.Avl.insert avl (S.Tuple.encode schema [ S.Tuple.VInt k; S.Tuple.VStr "" ]))
        keys;
      let npp = 4096 / 48 in
      let avl_pages = (I.Avl.node_count avl + npp - 1) / npp in
      let disk_a = S.Disk.create ~env:env_a ~page_size:4096 in
      let pager_a =
        I.Pager.create ~disk:disk_a
          ~pool_capacity:(max 1 (int_of_float (h *. float_of_int avl_pages)))
          ~policy:(S.Buffer_pool.Random_replacement (U.Xorshift.create 7))
          ~nodes_per_page:npp
      in
      I.Pager.attach_avl pager_a avl;
      let rng = U.Xorshift.create 19 in
      for _ = 1 to 1000 do
        ignore (I.Avl.search avl (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let before = env_a.S.Env.counters.S.Counters.faults in
      for _ = 1 to 2000 do
        ignore (I.Avl.search avl (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let avl_faults =
        float_of_int (env_a.S.Env.counters.S.Counters.faults - before) /. 2000.0
      in
      (* Build B+-tree. *)
      let env_b = S.Env.create () in
      let bt = I.Btree.create ~env:env_b ~schema ~page_size:4096 () in
      Array.iter
        (fun k -> I.Btree.insert bt (S.Tuple.encode schema [ S.Tuple.VInt k; S.Tuple.VStr "" ]))
        keys;
      let disk_b = S.Disk.create ~env:env_b ~page_size:4096 in
      let pager_b =
        I.Pager.create ~disk:disk_b
          ~pool_capacity:
            (max 1 (int_of_float (h *. float_of_int (I.Btree.node_count bt))))
          ~policy:(S.Buffer_pool.Random_replacement (U.Xorshift.create 7))
          ~nodes_per_page:1
      in
      I.Pager.attach_btree pager_b bt;
      for _ = 1 to 1000 do
        ignore (I.Btree.search bt (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let before = env_b.S.Env.counters.S.Counters.faults in
      for _ = 1 to 2000 do
        ignore (I.Btree.search bt (S.Tuple.encode_int_key schema (U.Xorshift.int rng n)))
      done;
      let bt_faults =
        float_of_int (env_b.S.Env.counters.S.Counters.faults - before) /. 2000.0
      in
      U.Tablefmt.add_row table
        [
          Printf.sprintf "%.0f%%" (h *. 100.0);
          U.Tablefmt.cell_float avl_faults;
          U.Tablefmt.cell_float bt_faults;
          (if avl_faults < bt_faults then "AVL tree" else "B+-tree");
        ])
    [ 0.3; 0.6; 0.9; 1.0 ];
  U.Tablefmt.print table;
  print_endline
    "\nfaults dominate cost at Z=10-30; the B+-tree's advice holds until \
     the AVL structure is (nearly) fully resident.";
