(* Join showdown: the Section 3 scenario.  An orders fact table joins a
   customers dimension under different memory budgets; all four of the
   paper's algorithms run on the simulated storage engine and report
   simulated time and I/O — reproducing Figure 1's shape on a workload
   you can edit.

   Run with: dune exec examples/join_showdown.exe *)

module U = Mmdb_util
module S = Mmdb_storage
module E = Mmdb_exec

let customers_schema =
  S.Schema.create ~key:"cust_id"
    [
      S.Schema.column "cust_id" S.Schema.Int;
      S.Schema.column "segment" S.Schema.Int;
      S.Schema.column ~width:48 "name" S.Schema.Fixed_string;
    ]

let orders_schema =
  S.Schema.create ~key:"cust_id"
    [
      S.Schema.column "cust_id" S.Schema.Int;
      S.Schema.column "order_id" S.Schema.Int;
      S.Schema.column "amount" S.Schema.Int;
      S.Schema.column ~width:40 "note" S.Schema.Fixed_string;
    ]

let build_workload () =
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:4096 in
  let rng = U.Xorshift.create 2024 in
  let n_customers = 4000 and n_orders = 12_000 in
  let customers =
    S.Relation.of_tuples ~disk ~name:"customers" ~schema:customers_schema
      (List.init n_customers (fun i ->
           S.Tuple.encode customers_schema
             [
               S.Tuple.VInt i;
               S.Tuple.VInt (U.Xorshift.int rng 5);
               S.Tuple.VStr (Printf.sprintf "cust-%d" i);
             ]))
  in
  let orders =
    S.Relation.of_tuples ~disk ~name:"orders" ~schema:orders_schema
      (List.init n_orders (fun i ->
           S.Tuple.encode orders_schema
             [
               S.Tuple.VInt (U.Xorshift.int rng n_customers);
               S.Tuple.VInt i;
               S.Tuple.VInt (U.Xorshift.int rng 10_000);
               S.Tuple.VStr "";
             ]))
  in
  (env, customers, orders)

let () =
  let _, customers, orders = build_workload () in
  Printf.printf
    "customers: %d tuples / %d pages; orders: %d tuples / %d pages\n\n"
    (S.Relation.ntuples customers)
    (S.Relation.npages customers)
    (S.Relation.ntuples orders)
    (S.Relation.npages orders);
  let table =
    U.Tablefmt.create
      [ "|M| pages"; "algorithm"; "matches"; "sim time"; "seq I/O"; "rand I/O";
        "comparisons"; "hashes" ]
  in
  List.iter
    (fun mem_pages ->
      List.iter
        (fun algo ->
          (* Fresh relations per run so counters do not interfere. *)
          let _, customers, orders = build_workload () in
          let stats =
            E.Joiner.run_measured algo ~mem_pages ~fudge:1.2 customers orders
          in
          let c = stats.E.Op_stats.counters in
          U.Tablefmt.add_row table
            [
              U.Tablefmt.cell_int mem_pages;
              E.Joiner.name algo;
              U.Tablefmt.cell_int stats.E.Op_stats.output_tuples;
              Printf.sprintf "%.2f s" stats.E.Op_stats.seconds;
              U.Tablefmt.cell_int (c.S.Counters.seq_reads + c.S.Counters.seq_writes);
              U.Tablefmt.cell_int (c.S.Counters.rand_reads + c.S.Counters.rand_writes);
              U.Tablefmt.cell_int c.S.Counters.comparisons;
              U.Tablefmt.cell_int c.S.Counters.hashes;
            ])
        E.Joiner.all;
      U.Tablefmt.add_rule table)
    [ 16; 64; 256 ];
  U.Tablefmt.print table;
  print_endline
    "\nAs in Figure 1: hybrid hash leads at every budget, simple hash \
     converges to it once the build side fits, GRACE pays its full \
     partition pass regardless, and sort-merge trails until memory \
     swallows both relations.";
  (* Cross-check: every algorithm returns the same join. *)
  let _, customers, orders = build_workload () in
  let baseline = E.Nested_loop.join_uncharged customers orders (fun _ _ -> ()) in
  List.iter
    (fun algo ->
      let n =
        E.Joiner.run algo ~mem_pages:64 ~fudge:1.2 customers orders
          (fun _ _ -> ())
      in
      assert (n = baseline))
    E.Joiner.all;
  Printf.printf "\nall algorithms agree with nested-loop: %d matches.\n"
    baseline
