(* Quickstart: create a main-memory database, load a table, index it,
   run point/range lookups and a declarative query through the Section 4
   planner.

   Run with: dune exec examples/quickstart.exe *)

module S = Mmdb_storage
module A = Mmdb_planner.Algebra
module Agg = Mmdb_exec.Aggregate

let () =
  (* A database with 256 pages of operator memory and Table 2 costs. *)
  let db = Mmdb.Db.create ~mem_pages:256 () in

  (* Employees: fixed-width tuples, keyed on id. *)
  let emp =
    S.Schema.create ~key:"id"
      [
        S.Schema.column "id" S.Schema.Int;
        S.Schema.column "dept" S.Schema.Int;
        S.Schema.column "salary" S.Schema.Int;
        S.Schema.column ~width:16 "name" S.Schema.Fixed_string;
      ]
  in
  Mmdb.Db.create_table db ~name:"emp" ~schema:emp;
  Mmdb.Db.insert_many db ~table:"emp"
    (List.init 1000 (fun i ->
         [
           S.Tuple.VInt i;
           S.Tuple.VInt (i mod 12);
           S.Tuple.VInt (35_000 + (i mod 50 * 1000));
           S.Tuple.VStr (Printf.sprintf "emp%04d" i);
         ]));

  (* Index it both ways: the paper's Section 2 pair. *)
  Mmdb.Db.create_index db ~table:"emp" Mmdb.Db.Avl_index;
  Mmdb.Db.create_index db ~table:"emp" Mmdb.Db.Btree_index;

  (* Point lookup ("retrieve (emp.salary) where emp.name = ..."). *)
  (match Mmdb.Db.lookup db ~table:"emp" ~key:(S.Tuple.VInt 742) with
  | Some [ _; _; S.Tuple.VInt salary; S.Tuple.VStr name ] ->
    Printf.printf "employee 742 is %s with salary %d\n" name salary
  | _ -> print_endline "employee 742 not found");

  (* Range scan (the paper's sequential-access case: "emp.name = J*"). *)
  let rows =
    Mmdb.Db.range db ~table:"emp" ~lo:(S.Tuple.VInt 100) ~hi:(S.Tuple.VInt 104)
  in
  Printf.printf "ids 100-104: %d rows\n" (List.length rows);

  (* A declarative query: average salary by department for well-paid
     employees — selection pushed down, hash aggregation (Section 3.9). *)
  let query =
    A.aggregate ~group_by:"dept"
      ~aggs:[ Agg.Count; Agg.Avg "salary" ]
      (A.select ~column:"salary" ~op:A.Ge ~value:(S.Tuple.VInt 60_000)
         (A.scan "emp"))
  in
  print_endline "\nplan:";
  print_string (Mmdb.Db.explain db query);
  print_endline "\ndept | count | avg salary";
  List.iter
    (fun row ->
      match row with
      | [ S.Tuple.VInt dept; S.Tuple.VInt count; S.Tuple.VInt avg ] ->
        Printf.printf "%4d | %5d | %d\n" dept count avg
      | _ -> ())
    (Mmdb.Db.query_rows db query);

  Printf.printf "\ninstrumentation: %s\n" (Mmdb.Db.stats db)
