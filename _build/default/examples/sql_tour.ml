(* SQL tour: the whole query stack through the SQL front-end — filters,
   joins, aggregation, set operations and ordering, each showing the plan
   the Section 4 optimizer produced.

   Run with: dune exec examples/sql_tour.exe *)

module S = Mmdb_storage
module U = Mmdb_util

let db =
  let db = Mmdb.Db.create ~mem_pages:256 () in
  let orders =
    S.Schema.create ~key:"order_id"
      [
        S.Schema.column "order_id" S.Schema.Int;
        S.Schema.column "customer" S.Schema.Int;
        S.Schema.column "product" S.Schema.Int;
        S.Schema.column "amount" S.Schema.Int;
      ]
  in
  let products =
    S.Schema.create ~key:"product_id"
      [
        S.Schema.column "product_id" S.Schema.Int;
        S.Schema.column "price" S.Schema.Int;
        S.Schema.column ~width:16 "pname" S.Schema.Fixed_string;
      ]
  in
  Mmdb.Db.create_table db ~name:"orders" ~schema:orders;
  Mmdb.Db.create_table db ~name:"products" ~schema:products;
  let rng = U.Xorshift.create 7 in
  Mmdb.Db.insert_many db ~table:"orders"
    (List.init 2000 (fun i ->
         [
           S.Tuple.VInt i;
           S.Tuple.VInt (U.Xorshift.int rng 300);
           S.Tuple.VInt (U.Xorshift.int rng 25);
           S.Tuple.VInt (1 + U.Xorshift.int rng 9);
         ]));
  Mmdb.Db.insert_many db ~table:"products"
    (List.init 25 (fun i ->
         [
           S.Tuple.VInt i;
           S.Tuple.VInt (500 + (137 * i mod 4000));
           S.Tuple.VStr (Printf.sprintf "product-%02d" i);
         ]));
  db

let show ?(limit = 8) sql =
  Printf.printf "\nsql> %s\n" sql;
  print_string (Mmdb.Db.sql_explain db sql);
  let rows = Mmdb.Db.sql db sql in
  List.iteri
    (fun i row ->
      if i < limit then
        print_endline
          ("  "
          ^ String.concat " | "
              (List.map
                 (function
                   | S.Tuple.VInt v -> string_of_int v
                   | S.Tuple.VStr s -> s)
                 row)))
    rows;
  if List.length rows > limit then
    Printf.printf "  ... (%d rows)\n" (List.length rows)

let () =
  show "SELECT order_id, amount FROM orders WHERE amount >= 9";
  show
    "SELECT r_product, COUNT(*), SUM(r_amount) FROM orders JOIN products ON \
     product = product_id WHERE s_price > 3000 GROUP BY r_product ORDER BY \
     sum_r_amount DESC";
  show
    "SELECT DISTINCT customer FROM orders WHERE amount = 9 INTERSECT SELECT \
     DISTINCT customer FROM orders WHERE amount = 1";
  show
    "SELECT DISTINCT product FROM orders EXCEPT SELECT DISTINCT product FROM \
     orders WHERE amount > 2";
  print_newline ()
