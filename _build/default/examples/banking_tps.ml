(* Banking: the Section 5 scenario.  Debit/credit transactions against a
   memory-resident account table under each commit strategy, then a crash
   and recovery — showing the paper's 100 -> 1000 -> N*1000 tps ladder and
   group commit's lost-tail semantics.

   Run with: dune exec examples/banking_tps.exe *)

module U = Mmdb_util
module R = Mmdb_recovery

let () =
  print_endline "-- throughput by commit strategy (saturated load) --\n";
  let table =
    U.Tablefmt.create
      [ "strategy"; "tps"; "p50 latency"; "log pages"; "disk log bytes" ]
  in
  List.iter
    (fun strategy ->
      let r = R.Tps_sim.run ~nrecords:100_000 ~n_txns:3000 strategy in
      U.Tablefmt.add_row table
        [
          r.R.Tps_sim.strategy_label;
          U.Tablefmt.cell_float ~decimals:0 r.R.Tps_sim.tps;
          Printf.sprintf "%.1f ms" (r.R.Tps_sim.latency.U.Stats.p50 *. 1e3);
          U.Tablefmt.cell_int r.R.Tps_sim.log_pages;
          U.Tablefmt.cell_int r.R.Tps_sim.log_disk_bytes;
        ])
    [
      R.Wal.Conventional;
      R.Wal.Group_commit;
      R.Wal.Partitioned { devices = 2 };
      R.Wal.Partitioned { devices = 4 };
      R.Wal.Stable { devices = 1; capacity_bytes = 65536; compressed = true };
    ];
  U.Tablefmt.print table;

  print_endline "\n-- crash and recovery with group commit --\n";
  let db =
    Mmdb.Txn_db.create ~strategy:R.Wal.Group_commit ~nrecords:100 ()
  in
  (* Move money around; each transaction is zero-sum. *)
  for i = 0 to 49 do
    ignore (Mmdb.Txn_db.transact db [ (i mod 100, 25); ((i + 1) mod 100, -25) ]);
    Mmdb.Txn_db.advance db 1e-3
  done;
  ignore (Mmdb.Txn_db.checkpoint db);
  (* A few more transactions, never flushed: the open commit group. *)
  let tail =
    List.init 3 (fun _ ->
        let o = Mmdb.Txn_db.transact db [ (7, 1000); (8, -1000) ] in
        o.Mmdb.Txn_db.txn_id)
  in
  Printf.printf "committed before crash: %d; in-flight (unflushed group): %d\n"
    (List.length (Mmdb.Txn_db.committed_txns db))
    (List.length tail);
  Mmdb.Txn_db.crash db;
  let stats = Mmdb.Txn_db.recover db in
  Printf.printf
    "recovered: redo %d, undo %d, scanned %d log records in %.3f s\n"
    stats.R.Kv_store.redo_applied stats.R.Kv_store.undo_applied
    stats.R.Kv_store.records_scanned stats.R.Kv_store.recovery_time;
  let total = ref 0 in
  for slot = 0 to 99 do
    total := !total + Mmdb.Txn_db.balance db slot
  done;
  Printf.printf "money conserved after recovery: sum = %d (expected 0)\n"
    !total;
  Printf.printf "account 7 balance: %d (the 1000-unit transfers were lost \
                 with the unflushed group, as group commit promises)\n"
    (Mmdb.Txn_db.balance db 7)
