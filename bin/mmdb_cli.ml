(* mmdb command-line tool: run the paper's analyses and simulations with
   your own parameters.

     mmdb_cli crossover --tuples 1000000 --z 20 --y 0.8
     mmdb_cli join --r-pages 10000 --s-pages 10000 --ratio 0.3
     mmdb_cli tps --strategy group-commit --txns 5000
     mmdb_cli recover --strategy partitioned-2 --txns 2000 --checkpoint 500
     mmdb_cli plan --mem 512 [--no-hash]
*)

module U = Mmdb_util
module S = Mmdb_storage
module AM = Mmdb_model.Access_model
module JM = Mmdb_model.Join_model
module R = Mmdb_recovery
module P = Mmdb_planner
module A = P.Algebra
module E = Mmdb_exec

open Cmdliner

(* ------------------------------------------------------------------ *)
(* crossover                                                           *)
(* ------------------------------------------------------------------ *)

let crossover tuples tuple_width key_width page_size z y =
  let p =
    {
      AM.r_tuples = tuples;
      AM.tuple_width;
      AM.key_width;
      AM.page_size;
      AM.pointer_width = 4;
      AM.z;
      AM.y;
    }
  in
  Printf.printf "relation: %s\n" (Format.asprintf "%a" AM.pp p);
  let h = AM.crossover_h p in
  Printf.printf
    "AVL beats B+-tree once %.1f%% of the AVL structure (%d pages; %d MB at \
     %d-byte pages) is memory-resident.\n"
    (100.0 *. h) (AM.avl_pages p)
    (AM.avl_pages p * page_size / 1_000_000)
    page_size;
  let hseq = AM.crossover_h_seq p ~n:1000 in
  Printf.printf "sequential access (1000 records): crossover at %.1f%%.\n"
    (100.0 *. hseq);
  0

let crossover_cmd =
  let tuples =
    Arg.(value & opt int 1_000_000 & info [ "tuples" ] ~doc:"Relation cardinality ||R||.")
  in
  let width =
    Arg.(value & opt int 40 & info [ "tuple-width" ] ~doc:"Tuple width t in bytes.")
  in
  let key = Arg.(value & opt int 8 & info [ "key-width" ] ~doc:"Key width K in bytes.") in
  let page = Arg.(value & opt int 4096 & info [ "page-size" ] ~doc:"Page size P in bytes.") in
  let z = Arg.(value & opt float 20.0 & info [ "z" ] ~doc:"Page-read cost in comparisons (10-30).") in
  let y = Arg.(value & opt float 1.0 & info [ "y" ] ~doc:"AVL comparison cost relative to B+-tree (<= 1).") in
  Cmd.v
    (Cmd.info "crossover" ~doc:"Section 2: AVL vs B+-tree memory-residency crossover.")
    Term.(const crossover $ tuples $ width $ key $ page $ z $ y)

(* ------------------------------------------------------------------ *)
(* join                                                                *)
(* ------------------------------------------------------------------ *)

let join r_pages s_pages tpp ratio =
  let w =
    {
      JM.r_pages = min r_pages s_pages;
      JM.s_pages = max r_pages s_pages;
      JM.r_tuples_per_page = tpp;
      JM.s_tuples_per_page = tpp;
      JM.cost = S.Cost.table2;
    }
  in
  let m =
    max (JM.min_memory w)
      (int_of_float (ratio *. float_of_int w.JM.r_pages *. 1.2))
  in
  Printf.printf
    "|R| = %d pages, |S| = %d pages, |M| = %d pages (ratio %.3f)\n\n"
    w.JM.r_pages w.JM.s_pages m ratio;
  let t = U.Tablefmt.create [ "algorithm"; "predicted seconds" ] in
  List.iter
    (fun (name, cost) ->
      U.Tablefmt.add_row t [ name; U.Tablefmt.cell_float ~decimals:1 cost ])
    (JM.all_four w ~m);
  U.Tablefmt.print t;
  Printf.printf "\nhybrid: B = %d partitions, q = %.2f in memory; simple: %d passes.\n"
    (JM.hybrid_partitions w ~m) (JM.hybrid_q w ~m)
    (JM.simple_hash_passes w ~m);
  0

let join_cmd =
  let r = Arg.(value & opt int 10_000 & info [ "r-pages" ] ~doc:"Pages in R.") in
  let s = Arg.(value & opt int 10_000 & info [ "s-pages" ] ~doc:"Pages in S.") in
  let tpp = Arg.(value & opt int 40 & info [ "tuples-per-page" ] ~doc:"Tuples per page.") in
  let ratio =
    Arg.(value & opt float 0.3 & info [ "ratio" ] ~doc:"|M| / (|R| * F).")
  in
  Cmd.v
    (Cmd.info "join" ~doc:"Section 3: predicted cost of the four join algorithms.")
    Term.(const join $ r $ s $ tpp $ ratio)

(* ------------------------------------------------------------------ *)
(* tps                                                                 *)
(* ------------------------------------------------------------------ *)

let strategy_of_string = function
  | "conventional" -> Ok R.Wal.Conventional
  | "group-commit" -> Ok R.Wal.Group_commit
  | s when String.length s > 12 && String.sub s 0 12 = "partitioned-" -> (
    match int_of_string_opt (String.sub s 12 (String.length s - 12)) with
    | Some n when n > 0 -> Ok (R.Wal.Partitioned { devices = n })
    | _ -> Error (`Msg "bad device count"))
  | "stable" ->
    Ok (R.Wal.Stable { devices = 1; capacity_bytes = 65536; compressed = true })
  | s -> Error (`Msg ("unknown strategy " ^ s))

let strategy_conv =
  Arg.conv
    ( strategy_of_string,
      fun ppf s -> Format.fprintf ppf "%s" (R.Tps_sim.strategy_label s) )

let tps strategy txns accounts =
  let r = R.Tps_sim.run ~nrecords:accounts ~n_txns:txns strategy in
  Printf.printf "strategy:    %s\n" r.R.Tps_sim.strategy_label;
  Printf.printf "committed:   %d transactions in %.3f simulated s\n"
    r.R.Tps_sim.committed r.R.Tps_sim.makespan;
  Printf.printf "throughput:  %.0f tps\n" r.R.Tps_sim.tps;
  Printf.printf "latency:     %s\n"
    (Format.asprintf "%a" U.Stats.pp_summary r.R.Tps_sim.latency);
  Printf.printf "log written: %d pages, %d bytes\n" r.R.Tps_sim.log_pages
    r.R.Tps_sim.log_disk_bytes;
  0

let tps_cmd =
  let strategy =
    Arg.(
      value
      & opt strategy_conv R.Wal.Group_commit
      & info [ "strategy" ]
          ~doc:
            "conventional | group-commit | partitioned-N | stable.")
  in
  let txns = Arg.(value & opt int 3000 & info [ "txns" ] ~doc:"Transactions to run.") in
  let accounts =
    Arg.(value & opt int 100_000 & info [ "accounts" ] ~doc:"Account-table size.")
  in
  Cmd.v
    (Cmd.info "tps" ~doc:"Section 5.2: simulated transaction throughput.")
    Term.(const tps $ strategy $ txns $ accounts)

(* ------------------------------------------------------------------ *)
(* recover                                                             *)
(* ------------------------------------------------------------------ *)

let recover strategy txns checkpoint crash_after audit parallel logging
    use_domains replay_crash serve_stale =
  let cfg =
    {
      R.Recovery_manager.default_config with
      R.Recovery_manager.strategy;
      R.Recovery_manager.n_txns = txns;
      R.Recovery_manager.checkpoint_every = checkpoint;
      R.Recovery_manager.crash_after;
      replay =
        {
          R.Recovery_manager.workers = parallel;
          use_domains;
          logging;
          crash_steps = replay_crash;
          record_replay = false;
          serve_stale;
        };
    }
  in
  let o = R.Recovery_manager.run cfg in
  Printf.printf "submitted:           %d\n" o.R.Recovery_manager.submitted;
  Printf.printf "durably committed:   %d\n" o.R.Recovery_manager.durably_committed;
  Printf.printf "checkpoints:         %d (%d pages)\n"
    o.R.Recovery_manager.checkpoints_taken o.R.Recovery_manager.checkpoint_pages;
  Printf.printf "log:                 %d pages, %d bytes (%d command txns)\n"
    o.R.Recovery_manager.log_pages o.R.Recovery_manager.log_disk_bytes
    o.R.Recovery_manager.command_txns;
  let rs = o.R.Recovery_manager.recover_stats in
  Printf.printf "recovery:            redo %d, undo %d, %d records scanned, %.3f s\n"
    rs.R.Kv_store.redo_applied rs.R.Kv_store.undo_applied
    rs.R.Kv_store.records_scanned rs.R.Kv_store.recovery_time;
  Printf.printf
    "replay:              %d worker(s)%s, %d local ops, %d barrier ops \
     across %d barriers, %d pages written back\n"
    rs.R.Kv_store.workers
    (if rs.R.Kv_store.used_domains then " (domains)" else "")
    (rs.R.Kv_store.local_value_ops + rs.R.Kv_store.local_command_ops)
    rs.R.Kv_store.barrier_ops rs.R.Kv_store.barriers
    rs.R.Kv_store.pages_written_back;
  if o.R.Recovery_manager.recovery_attempts > 1 then
    Printf.printf "recovery attempts:   %d (crashed mid-replay, restarted)\n"
      o.R.Recovery_manager.recovery_attempts;
  if serve_stale then
    Printf.printf
      "stale service:       %d reads answered from the checkpoint image \
       during replay (%d already current)\n"
      o.R.Recovery_manager.stale_reads_served
      o.R.Recovery_manager.stale_reads_current;
  Printf.printf "consistent:          %b\nmoney conserved:     %b\n"
    o.R.Recovery_manager.consistent o.R.Recovery_manager.money_conserved;
  let audit_ok =
    if not audit then true
    else begin
      (* The full submitted log is a complete run; the durable log may be
         crash-truncated, so open transactions there are legitimate. *)
      let results =
        Mmdb_verify.Audit.run_all
          [
            Mmdb_verify.Audit.Log
              {
                name = "wal (submitted)";
                complete = true;
                records = o.R.Recovery_manager.log_records;
              };
            Mmdb_verify.Audit.Log
              {
                name = "wal (durable)";
                complete = false;
                records = o.R.Recovery_manager.durable_log;
              };
          ]
      in
      print_newline ();
      Mmdb_verify.Audit.report Format.std_formatter results
    end
  in
  if o.R.Recovery_manager.consistent && audit_ok then 0 else 1

let recover_cmd =
  let strategy =
    Arg.(
      value
      & opt strategy_conv R.Wal.Group_commit
      & info [ "strategy" ] ~doc:"Commit strategy (see tps).")
  in
  let txns = Arg.(value & opt int 2000 & info [ "txns" ] ~doc:"Transactions.") in
  let checkpoint =
    Arg.(
      value
      & opt (some int) (Some 500)
      & info [ "checkpoint" ] ~doc:"Checkpoint interval in transactions.")
  in
  let crash =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after" ] ~doc:"Crash after N submissions (default: clean run).")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ] ~doc:"Run the WAL protocol auditor on the logs.")
  in
  let parallel =
    Arg.(
      value & opt int 1
      & info [ "parallel" ]
          ~doc:"Replay partitions (log is partitioned by page).")
  in
  let logging =
    let logging_conv =
      Arg.enum
        [
          ("value", R.Recovery_manager.Value_logging);
          ("command", R.Recovery_manager.Command_logging);
          ("adaptive", R.Recovery_manager.Adaptive_logging);
        ]
    in
    Arg.(
      value
      & opt logging_conv R.Recovery_manager.Value_logging
      & info [ "logging" ]
          ~doc:
            "Log record choice: $(b,value), $(b,command), or $(b,adaptive) \
             (per-transaction, priced by the recovery-time model).")
  in
  let use_domains =
    Arg.(
      value & flag
      & info [ "domains" ]
          ~doc:
            "Replay partitions on real domains (OCaml 5; falls back to the \
             deterministic scheduler elsewhere).")
  in
  let replay_crash =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay-crash" ]
          ~doc:
            "Crash the recovery itself after N replay steps, then restart \
             it (restart-crash resilience demo).")
  in
  let serve_stale =
    Arg.(
      value & flag
      & info [ "serve-stale" ]
          ~doc:
            "Degraded read-only mode: while replay is in flight, serve a \
             modelled read stream from the surviving checkpoint image and \
             report its staleness.")
  in
  Cmd.v
    (Cmd.info "recover" ~doc:"Sections 5.3-5.5: crash, recover, verify.")
    Term.(
      const recover $ strategy $ txns $ checkpoint $ crash $ audit $ parallel
      $ logging $ use_domains $ replay_crash $ serve_stale)

(* ------------------------------------------------------------------ *)
(* plan                                                                *)
(* ------------------------------------------------------------------ *)

let plan mem no_hash =
  let db = Mmdb.Db.create ~mem_pages:mem () in
  let emp =
    S.Schema.create ~key:"id"
      [
        S.Schema.column "id" S.Schema.Int;
        S.Schema.column "dept" S.Schema.Int;
        S.Schema.column "salary" S.Schema.Int;
      ]
  in
  let dept =
    S.Schema.create ~key:"dept_id"
      [
        S.Schema.column "dept_id" S.Schema.Int;
        S.Schema.column "region" S.Schema.Int;
      ]
  in
  Mmdb.Db.create_table db ~name:"emp" ~schema:emp;
  Mmdb.Db.create_table db ~name:"dept" ~schema:dept;
  let rng = U.Xorshift.create 5 in
  Mmdb.Db.insert_many db ~table:"emp"
    (List.init 10_000 (fun i ->
         [
           S.Tuple.VInt i;
           S.Tuple.VInt (U.Xorshift.int rng 50);
           S.Tuple.VInt (30_000 + U.Xorshift.int rng 70_000);
         ]));
  Mmdb.Db.insert_many db ~table:"dept"
    (List.init 50 (fun i -> [ S.Tuple.VInt i; S.Tuple.VInt (i mod 4) ]));
  let q =
    A.aggregate ~group_by:"r_dept" ~aggs:[ E.Aggregate.Count ]
      (A.select ~column:"r_salary" ~op:A.Gt ~value:(S.Tuple.VInt 80_000)
         (A.join ~left_key:"dept" ~right_key:"dept_id" (A.scan "emp")
            (A.scan "dept")))
  in
  let cfg =
    {
      P.Optimizer.mem_pages = mem;
      P.Optimizer.fudge = 1.2;
      P.Optimizer.allow_hash = not no_hash;
    }
  in
  let plan = P.Optimizer.plan (Mmdb.Db.catalog db) cfg q in
  Printf.printf "query: %s\n\nplan (|M| = %d pages%s):\n%s\n"
    (Format.asprintf "%a" A.pp q)
    mem
    (if no_hash then ", hash disabled" else "")
    (P.Optimizer.explain plan);
  Printf.printf "estimated join cost: %.4f s\n" (P.Optimizer.estimated_cost plan);
  let out = P.Executor.run (Mmdb.Db.catalog db) cfg plan in
  Printf.printf "executed: %d result rows\n" (S.Relation.ntuples out);
  0

let plan_cmd =
  let mem = Arg.(value & opt int 512 & info [ "mem" ] ~doc:"Memory pages |M|.") in
  let no_hash =
    Arg.(value & flag & info [ "no-hash" ] ~doc:"Restrict the optimizer to sort-merge.")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Section 4: optimize and run a demo star query.")
    Term.(const plan $ mem $ no_hash)

(* ------------------------------------------------------------------ *)
(* sql                                                                 *)
(* ------------------------------------------------------------------ *)

let demo_db () =
  let db = Mmdb.Db.create ~mem_pages:256 () in
  let emp =
    S.Schema.create ~key:"id"
      [
        S.Schema.column "id" S.Schema.Int;
        S.Schema.column "dept" S.Schema.Int;
        S.Schema.column "salary" S.Schema.Int;
        S.Schema.column ~width:16 "name" S.Schema.Fixed_string;
      ]
  in
  let dept =
    S.Schema.create ~key:"dept_id"
      [
        S.Schema.column "dept_id" S.Schema.Int;
        S.Schema.column "budget" S.Schema.Int;
        S.Schema.column ~width:16 "dname" S.Schema.Fixed_string;
      ]
  in
  Mmdb.Db.create_table db ~name:"emp" ~schema:emp;
  Mmdb.Db.create_table db ~name:"dept" ~schema:dept;
  let rng = U.Xorshift.create 1984 in
  Mmdb.Db.insert_many db ~table:"emp"
    (List.init 5000 (fun i ->
         [
           S.Tuple.VInt i;
           S.Tuple.VInt (U.Xorshift.int rng 20);
           S.Tuple.VInt (30_000 + U.Xorshift.int rng 90_000);
           S.Tuple.VStr (Printf.sprintf "emp%04d" i);
         ]));
  Mmdb.Db.insert_many db ~table:"dept"
    (List.init 20 (fun i ->
         [
           S.Tuple.VInt i;
           S.Tuple.VInt ((i + 1) * 50_000);
           S.Tuple.VStr (Printf.sprintf "dept%02d" i);
         ]));
  db

let run_sql text explain_only limit =
  let db = demo_db () in
  Printf.printf
    "demo database: emp(id, dept, salary, name) x 5000, dept(dept_id, \
     budget, dname) x 20\n\n";
  match P.Sql.parse_checked (Mmdb.Db.catalog db) text with
  | Error diags ->
    Format.printf "%a@." Mmdb_util.Diag.pp_list diags;
    1
  | Ok expr ->
    (match P.Plan_check.check (Mmdb.Db.catalog db) expr with
    | [] -> ()
    | warnings -> Format.printf "%a@." Mmdb_util.Diag.pp_list warnings);
    Printf.printf "plan:\n%s\n" (Mmdb.Db.explain db expr);
    if explain_only then 0
    else begin
      let rows = Mmdb.Db.query_rows db expr in
      let total = List.length rows in
      List.iteri
        (fun i row ->
          if i < limit then begin
            let cells =
              List.map
                (function
                  | S.Tuple.VInt v -> string_of_int v
                  | S.Tuple.VStr s -> s)
                row
            in
            print_endline (String.concat " | " cells)
          end)
        rows;
      if total > limit then Printf.printf "... (%d rows total)\n" total
      else Printf.printf "(%d rows)\n" total;
      0
    end

let sql_cmd =
  let text =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"The SQL text.")
  in
  let explain_only =
    Arg.(value & flag & info [ "explain" ] ~doc:"Show the plan only.")
  in
  let limit =
    Arg.(value & opt int 20 & info [ "limit" ] ~doc:"Max rows to print.")
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run a SQL query against a built-in demo database.")
    Term.(const run_sql $ text $ explain_only $ limit)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let run_check text explain_after =
  let db = demo_db () in
  Printf.printf
    "demo database: emp(id, dept, salary, name) x 5000, dept(dept_id, \
     budget, dname) x 20\n\n";
  match P.Sql.parse_checked (Mmdb.Db.catalog db) text with
  | Error diags ->
    Format.printf "%a@." U.Diag.pp_list diags;
    Printf.printf "check: %s\n" (U.Diag.summary diags);
    if U.Diag.has_errors diags then 1 else 0
  | Ok expr ->
    let diags = Mmdb.Db.check db expr in
    Format.printf "query: %a@.@." A.pp expr;
    if explain_after then Printf.printf "plan:\n%s\n" (Mmdb.Db.explain db expr);
    if diags <> [] then Format.printf "%a@." U.Diag.pp_list diags;
    Printf.printf "check: ok (%s)\n" (U.Diag.summary diags);
    0

let check_cmd =
  let text =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"The SQL text to check.")
  in
  let explain_after =
    Arg.(
      value & flag
      & info [ "explain" ] ~doc:"Also show the optimizer's plan when valid.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check a SQL query against the demo catalog without \
          executing it; exits 1 when the plan checker reports errors.")
    Term.(const run_check $ text $ explain_after)

(* ------------------------------------------------------------------ *)
(* txncheck                                                            *)
(* ------------------------------------------------------------------ *)

module V = Mmdb_verify

(* A deterministic Txn_db workload with schedule recording on: a batch of
   transfers, one explicit abort, a fuzzy checkpoint, more transfers, a
   crash and recovery. *)
let txncheck_builtin () =
  let db = Mmdb.Txn_db.create ~record_schedule:true ~nrecords:64 () in
  for i = 0 to 11 do
    let a = i * 5 mod 64 and b = ((i * 5) + 17) mod 64 in
    ignore (Mmdb.Txn_db.transact db [ (a, 25); (b, -25) ]);
    Mmdb.Txn_db.advance db 0.0003
  done;
  ignore (Mmdb.Txn_db.transact_abort db [ (3, 999); (4, -999) ]);
  ignore (Mmdb.Txn_db.checkpoint db);
  for i = 0 to 7 do
    ignore (Mmdb.Txn_db.transact db [ (i, 7); (i + 20, -7) ]);
    Mmdb.Txn_db.advance db 0.0003
  done;
  Mmdb.Txn_db.flush db;
  Mmdb.Txn_db.crash db;
  ignore (Mmdb.Txn_db.recover db);
  (Mmdb.Txn_db.schedule db, Mmdb.Txn_db.log_records db)

let run_txncheck fuzz seed txns accounts scramble crash_run =
  if not fuzz then begin
    let events, log = txncheck_builtin () in
    Printf.printf
      "built-in Txn_db workload: %d schedule events, %d log records\n\n"
      (List.length events) (List.length log);
    let results =
      V.Audit.run_all [ V.Audit.Schedule { name = "txn schedule"; events; log } ]
    in
    if V.Audit.report Format.std_formatter results then 0 else 1
  end
  else begin
    let o = V.Txn_fuzz.run ~txns ~accounts ~scramble ~crash:crash_run ~seed () in
    Printf.printf
      "fuzz seed %d: %d committed, %d aborted, %d lock waits, %d deadlocks \
       broken%s\n"
      seed o.V.Txn_fuzz.committed o.V.Txn_fuzz.aborted o.V.Txn_fuzz.waits
      o.V.Txn_fuzz.deadlocks
      (if o.V.Txn_fuzz.crashed then ", crashed mid-schedule" else "");
    Printf.printf "schedule: %d events, %d log records\n"
      (List.length o.V.Txn_fuzz.events)
      (List.length o.V.Txn_fuzz.log);
    let diags = o.V.Txn_fuzz.diags in
    if diags <> [] then Format.printf "@.%a@." U.Diag.pp_list diags;
    Printf.printf "txncheck: %s\n" (U.Diag.summary diags);
    if U.Diag.has_errors diags then 1 else 0
  end

let txncheck_cmd =
  let fuzz =
    Arg.(
      value & flag
      & info [ "fuzz" ]
          ~doc:
            "Run the seeded interleaved-workload fuzzer (staged lock \
             acquisition, aborts, optional deadlocks) instead of the \
             built-in Txn_db workload.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Fuzzer PRNG seed.")
  in
  let txns =
    Arg.(value & opt int 40 & info [ "txns" ] ~doc:"Fuzzer transaction count.")
  in
  let accounts =
    Arg.(
      value & opt int 16
      & info [ "accounts" ] ~doc:"Fuzzer account count (small = contended).")
  in
  let scramble =
    Arg.(
      value & flag
      & info [ "scramble" ]
          ~doc:
            "Shuffle each transaction's lock-acquisition order: deadlocks \
             become possible and must be caught (TXN006/TXN101).")
  in
  let crash_run =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Stop the fuzzed run mid-schedule without flushing the log \
             (truncated-trace tolerance).")
  in
  Cmd.v
    (Cmd.info "txncheck"
       ~doc:
         "Record a transaction schedule and run the Section 5.2 sanitizer: \
          2PL/pre-commit conformance, waits-for deadlocks, \
          conflict-serializability, and the group-commit dependency audit. \
          Exits 1 when any TXN error is reported.")
    Term.(
      const run_txncheck $ fuzz $ seed $ txns $ accounts $ scramble $ crash_run)

(* ------------------------------------------------------------------ *)
(* torture                                                             *)
(* ------------------------------------------------------------------ *)

module Fault = Mmdb_fault.Fault
module Fault_plan = Mmdb_fault.Fault_plan

let faults_doc =
  "Comma-separated fault spec: "
  ^ String.concat ", "
      (List.map (fun (n, d) -> Printf.sprintf "$(b,%s) (%s)" n d)
         Fault_plan.spec_names)
  ^ "."

let torture seed txns faults strategy points =
  (* Validate the spec before sweeping. *)
  (match faults with
  | None -> ()
  | Some s -> (
    match Fault_plan.of_spec s with
    | Ok _ -> ()
    | Error m ->
      prerr_endline ("torture: " ^ m);
      exit 2));
  let specs = match faults with None -> None | Some s -> Some [ s ] in
  let strategies = Option.map (fun s -> [ s ]) strategy in
  let r =
    V.Torture.run ~seed ~txns ?specs ?strategies
      ~max_points_per_combo:points ()
  in
  Format.printf "%a" V.Torture.pp r;
  if V.Torture.ok r then 0 else 1

let torture_cmd =
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Sweep seed (workload, fault schedule, and crash points all derive from it).")
  in
  let txns =
    Arg.(value & opt int 48 & info [ "txns" ] ~doc:"Transactions per run.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~doc:(faults_doc ^ " Default: sweep every spec."))
  in
  let strategy =
    Arg.(
      value
      & opt (some strategy_conv) None
      & info [ "strategy" ]
          ~doc:"Restrict to one commit strategy (see tps). Default: all four.")
  in
  let points =
    Arg.(
      value & opt int 32
      & info [ "points" ] ~doc:"Max crash points per strategy x fault pair.")
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Crash the recovery stack at every schedulable point — between \
          arrivals, mid-log-page-write, past quiesce — for each commit \
          strategy, with and without injected faults (torn log tails, bit \
          flips, transient I/O errors, snapshot rot, battery droop). \
          Exits 1 on silent corruption: an invariant violation without an \
          unrecoverable-fault report.")
    Term.(const torture $ seed $ txns $ faults $ strategy $ points)

(* ------------------------------------------------------------------ *)
(* modelcheck                                                          *)
(* ------------------------------------------------------------------ *)

let modelcheck seed tolerance enumerate verbose =
  let cases =
    V.Model_check.run_suite ~seed ~tolerance_scale:tolerance ~enumerate ()
  in
  let all_clean = ref true in
  List.iter
    (fun (c : V.Model_check.case) ->
      let diags = V.Model_check.case_diags c in
      if U.Diag.has_errors diags then all_clean := false;
      if diags = [] then Format.printf "%-24s ok@." c.V.Model_check.name
      else begin
        Format.printf "%-24s %s@." c.V.Model_check.name (U.Diag.summary diags);
        List.iter (fun d -> Format.printf "  %a@." U.Diag.pp d) diags
      end;
      if verbose then
        List.iter
          (fun r ->
            Format.printf "  @[<v>%a@]@." V.Model_check.pp_report r)
          c.V.Model_check.reports)
    cases;
  let total = V.Model_check.suite_diags cases in
  Format.printf "modelcheck: %d case%s, %s%s@." (List.length cases)
    (if List.length cases = 1 then "" else "s")
    (U.Diag.summary total)
    (if enumerate then "" else " (optimality lint skipped; use --enumerate)");
  if !all_clean then 0 else 1

let modelcheck_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Corpus seed (table contents derive from it).")
  in
  let tolerance =
    Arg.(
      value & opt float 1.0
      & info [ "tolerance" ]
          ~doc:
            "Scale every declared tolerance band: values above 1 widen \
             (more permissive), below 1 tighten.")
  in
  let enumerate =
    Arg.(
      value & flag
      & info [ "enumerate" ]
          ~doc:
            "Also lint the optimizer: exhaustively enumerate the \
             algorithm-assignment plan space and flag chosen plans above \
             the enumerated minimum (MODEL008).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Print every node's predicted vs observed breakdown.")
  in
  Cmd.v
    (Cmd.info "modelcheck"
       ~doc:
         "Check the executable operators against the Section 3 analytic \
          cost model: predict each operator's comparisons, hashes, moves, \
          swaps and page I/Os symbolically, execute a seeded corpus under \
          counter instrumentation, and flag divergence beyond declared \
          per-operator tolerance bands (MODEL001-MODEL011). Exits 1 on \
          any error-severity finding.")
    Term.(const modelcheck $ seed $ tolerance $ enumerate $ verbose)

(* ------------------------------------------------------------------ *)
(* racecheck                                                           *)
(* ------------------------------------------------------------------ *)

let inject_of_spec spec =
  let atom = function
    | "ww" -> Ok [ `Ww ]
    | "rw" -> Ok [ `Rw ]
    | "unguarded" -> Ok [ `Unguarded ]
    | "release" -> Ok [ `Release_no_acquire ]
    | "snapshot" -> Ok [ `Snapshot ]
    | "all" -> Ok [ `Ww; `Rw; `Unguarded; `Release_no_acquire; `Snapshot ]
    | "" -> Ok []
    | a -> Error a
  in
  List.fold_left
    (fun acc tok ->
      match (acc, atom (String.trim tok)) with
      | Ok l, Ok a -> Ok (l @ a)
      | (Error _ as e), _ -> e
      | _, Error a -> Error a)
    (Ok [])
    (String.split_on_char ',' spec)

let racecheck_lint () =
  match V.Domain_lint.scan_lib () with
  | Error m ->
    prerr_endline ("racecheck: " ^ m);
    false
  | Ok (sites, parse_diags) ->
    Format.printf "static shared-state inventory (lib/):@.";
    V.Domain_lint.pp_inventory Format.std_formatter sites;
    let diags = parse_diags @ V.Domain_lint.diags_of_sites sites in
    if diags <> [] then Format.printf "@.%a@." U.Diag.pp_list diags;
    Format.printf "lint: %d site%s, %s@." (List.length sites)
      (if List.length sites = 1 then "" else "s")
      (U.Diag.summary diags);
    not (U.Diag.has_errors diags)

let racecheck_fuzz ~seed ~domains ~inject =
  let o = V.Txn_fuzz.run ~domains ~inject ~seed () in
  Printf.printf
    "fuzz seed %d, %d domains: %d committed, %d aborted, %d events, %d \
     injected race%s\n"
    seed domains o.V.Txn_fuzz.committed o.V.Txn_fuzz.aborted
    (List.length o.V.Txn_fuzz.events)
    (List.length o.V.Txn_fuzz.injected)
    (if List.length o.V.Txn_fuzz.injected = 1 then "" else "s");
  let diags = o.V.Txn_fuzz.race_diags in
  if diags <> [] then Format.printf "%a@." U.Diag.pp_list diags;
  let found = List.map (fun (d : U.Diag.t) -> d.U.Diag.code) diags in
  (* Positive controls: every injected race must be flagged under its
     expected code; a missed injection is a detector bug. *)
  let missed =
    List.filter (fun c -> not (List.mem c found)) o.V.Txn_fuzz.injected
  in
  List.iter
    (fun c -> Printf.printf "racecheck: MISSED injected race %s\n" c)
    missed;
  if o.V.Txn_fuzz.injected = [] then begin
    Printf.printf "fuzz: %s\n" (U.Diag.summary diags);
    not (U.Diag.has_errors diags)
  end
  else begin
    Printf.printf "fuzz: %d/%d injected races detected\n"
      (List.length o.V.Txn_fuzz.injected - List.length missed)
      (List.length o.V.Txn_fuzz.injected);
    missed = []
  end

let racecheck_mvcc ~seed =
  let r =
    R.Mvcc_sim.run ~seed ~n_writers:2_000 ~record_schedule:true
      R.Mvcc_sim.Versioning
  in
  let diags = V.Race_check.audit r.R.Mvcc_sim.events in
  if diags <> [] then Format.printf "%a@." U.Diag.pp_list diags;
  Printf.printf "mvcc: %d version-store events across %d domains, %s\n"
    (List.length r.R.Mvcc_sim.events)
    (List.length (V.Schedule.domains r.R.Mvcc_sim.events))
    (U.Diag.summary diags);
  not (U.Diag.has_errors diags)

let run_racecheck lint fuzz mvcc domains inject_spec seed =
  let inject =
    match inject_of_spec inject_spec with
    | Ok l -> l
    | Error a ->
      prerr_endline
        ("racecheck: unknown injection `" ^ a
       ^ "' (expected ww, rw, unguarded, release, snapshot or all)");
      exit 2
  in
  (* No mode flag = the full gate: lint, clean multi-domain fuzz, MVCC. *)
  let all = (not lint) && (not fuzz) && not mvcc in
  let ok = ref true in
  let part label b =
    if not b then ok := false;
    Printf.printf "%-6s %s\n\n" label (if b then "ok" else "FAIL")
  in
  if lint || all then part "lint" (racecheck_lint ());
  if fuzz || all then part "fuzz" (racecheck_fuzz ~seed ~domains ~inject);
  if mvcc || all then part "mvcc" (racecheck_mvcc ~seed);
  if !ok then 0 else 1

let racecheck_cmd =
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Static half only: inventory module-level mutable state under \
             lib/ and flag sites that are neither domain-safe nor \
             justified (RACE100-RACE103).")
  in
  let fuzz =
    Arg.(
      value & flag
      & info [ "fuzz" ]
          ~doc:
            "Dynamic half only: run the multi-domain transaction fuzzer \
             and audit the recorded schedule with the happens-before \
             detector (RACE001-RACE005).")
  in
  let mvcc =
    Arg.(
      value & flag
      & info [ "mvcc" ]
          ~doc:
            "Dynamic half, versioning engine: record the MVCC simulator's \
             version-store accesses and audit them (snapshot discipline, \
             RACE005).")
  in
  let domains =
    Arg.(
      value & opt int 3
      & info [ "domains" ]
          ~doc:"Simulated domain count for the fuzzed workload.")
  in
  let inject =
    Arg.(
      value & opt string ""
      & info [ "inject" ]
          ~doc:
            "Comma-separated positive controls seeded into the fuzzed \
             trace: $(b,ww), $(b,rw), $(b,unguarded), $(b,release), \
             $(b,snapshot), or $(b,all). Every injected race must be \
             flagged under its expected code or the run fails.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Workload PRNG seed.")
  in
  Cmd.v
    (Cmd.info "racecheck"
       ~doc:
         "Domain-safety gate for the multicore engine: static shared-state \
          lint over lib/ plus a FastTrack-style happens-before race \
          detector (with Eraser lockset fallback and MVCC snapshot \
          discipline) over recorded multi-domain schedules. With no mode \
          flag, runs the full gate (lint + fuzz + mvcc). Exits 1 on any \
          flagged site, detected race, or missed injection.")
    Term.(const run_racecheck $ lint $ fuzz $ mvcc $ domains $ inject $ seed)

(* ------------------------------------------------------------------ *)
(* perflint                                                            *)
(* ------------------------------------------------------------------ *)

let run_perflint quiet =
  match V.Perf_lint.scan_lib () with
  | Error m ->
    prerr_endline ("perflint: " ^ m);
    2
  | Ok (findings, parse_diags) ->
    if not quiet then begin
      Format.printf "performance-hazard inventory (lib/):@.";
      V.Perf_lint.pp_inventory Format.std_formatter findings
    end;
    let diags = parse_diags @ V.Perf_lint.diags_of_findings findings in
    if diags <> [] then Format.printf "@.%a@." U.Diag.pp_list diags;
    Format.printf "perflint: %d finding%s, %s@." (List.length findings)
      (if List.length findings = 1 then "" else "s")
      (U.Diag.summary diags);
    if U.Diag.has_errors diags then 1 else 0

let perflint_cmd =
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ]
          ~doc:
            "Print only unjustified findings and the summary, not the \
             full whitelisted inventory.")
  in
  Cmd.v
    (Cmd.info "perflint"
       ~doc:
         "Static performance-hazard lint over lib/: quadratic list \
          tail-appends (PERF101), O(n) list primitives under iteration \
          (PERF102), polymorphic compare/hash on hot paths (PERF103), \
          non-tail list recursion (PERF104), and string concatenation in \
          loops (PERF105). A finding is silenced by a (* perf_lint: ... *) \
          justification comment. Exits 1 on any unjustified finding.")
    Term.(const run_perflint $ quiet)

(* ------------------------------------------------------------------ *)
(* exnlint                                                             *)
(* ------------------------------------------------------------------ *)

let run_exnlint quiet =
  match V.Exn_flow.scan_lib () with
  | Error m ->
    prerr_endline ("exnlint: " ^ m);
    2
  | Ok (findings, parse_diags) ->
    if not quiet then begin
      Format.printf "exception-flow / resource-discipline inventory (lib/):@.";
      V.Exn_flow.pp_inventory Format.std_formatter findings
    end;
    let diags = parse_diags @ V.Exn_flow.diags_of_findings findings in
    if diags <> [] then Format.printf "@.%a@." U.Diag.pp_list diags;
    Format.printf "exnlint: %d finding%s, %s@." (List.length findings)
      (if List.length findings = 1 then "" else "s")
      (U.Diag.summary diags);
    if U.Diag.has_errors diags then 1 else 0

let exnlint_cmd =
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ]
          ~doc:
            "Print only unjustified findings and the summary, not the \
             full whitelisted inventory.")
  in
  Cmd.v
    (Cmd.info "exnlint"
       ~doc:
         "Interprocedural exception-flow and resource-discipline lint \
          over lib/: catch-alls swallowing fault-family exceptions \
          (EXN101), exceptions escaping exported APIs with no @raise \
          declaration (EXN102), partial stdlib calls reachable from \
          recovery/exec entry points (EXN103), backtrace-dropping \
          re-raises (EXN104), failwith on recovery paths (EXN105), and \
          pin/lock acquire-release pairing (RES101-RES104). A finding is \
          silenced by a (* exn_flow: ... *) justification comment. Exits \
          1 on any unjustified finding.")
    Term.(const run_exnlint $ quiet)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

(* Exercise the instrumented storage plane — faulted disk, buffer pool
   with scrubbing — and print the operation counters, whose media tally
   shares the fault plan's counter record. *)
let stats seed faults_spec pages ops =
  let rules =
    match Fault_plan.of_spec faults_spec with
    | Ok r -> r
    | Error m ->
      prerr_endline ("stats: " ^ m);
      exit 2
  in
  let env = S.Env.create () in
  let disk = S.Disk.create ~env ~page_size:4096 in
  let plan =
    Fault_plan.create ~seed ~tally:env.S.Env.counters.S.Counters.fault
      (* The spec atoms name log-plane sites; this workload exercises the
         storage plane, so map each rule onto its disk/pool analogue
         (battery droop has none and stays a no-op here). *)
      (List.map
         (fun r ->
           let site =
             match r.Fault_plan.site with
             | Fault.Log_write -> Fault.Disk_write
             | Fault.Log_read -> Fault.Disk_read
             | Fault.Snapshot | Fault.Stable_crash -> Fault.Pool_frame
             | (Fault.Disk_read | Fault.Disk_write | Fault.Pool_frame) as s
               -> s
           in
           { r with Fault_plan.site })
         rules)
  in
  S.Disk.arm disk plan;
  let pids = Array.init pages (fun _ -> S.Disk.alloc disk) in
  let rng = U.Xorshift.create seed in
  Array.iter
    (fun pid ->
      let b = Bytes.make 4096 '\000' in
      Bytes.set b 0 (Char.chr (pid land 0xff));
      S.Disk.write disk ~mode:S.Disk.Seq pid b)
    pids;
  let pool =
    S.Buffer_pool.create ~disk ~capacity:(max 1 (pages / 2)) S.Buffer_pool.Lru
  in
  let unrecoverable = ref 0 in
  for _ = 1 to ops do
    let pid = pids.(U.Xorshift.int rng pages) in
    match S.Buffer_pool.get pool pid with
    | (_ : bytes) -> ()
    | exception Fault.Unrecoverable _ -> incr unrecoverable
  done;
  let repaired = S.Buffer_pool.scrub pool in
  Printf.printf "workload:  %d pages, %d pool frames, %d random gets\n" pages
    (S.Buffer_pool.capacity pool) ops;
  Printf.printf "counters:  %s\n"
    (Format.asprintf "%a" S.Counters.pp env.S.Env.counters);
  Printf.printf "io retry:  %d transient retr%s, %.1f ms total backoff\n"
    (S.Counters.io_retries env.S.Env.counters)
    (if S.Counters.io_retries env.S.Env.counters = 1 then "y" else "ies")
    (S.Counters.io_retry_backoff env.S.Env.counters *. 1e3);
  Printf.printf "scrub:     %d frame(s) repaired from disk\n" repaired;
  if !unrecoverable > 0 then
    Printf.printf "unrecoverable reads: %d\n" !unrecoverable;
  (match Fault_plan.event_counts plan with
  | [] -> ()
  | evs ->
    Printf.printf "events:   ";
    List.iter (fun (c, n) -> Printf.printf " %s=%d" c n) evs;
    print_newline ());
  0

let stats_cmd =
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Fault-plan seed.") in
  let faults =
    Arg.(value & opt string "none" & info [ "faults" ] ~doc:faults_doc)
  in
  let pages =
    Arg.(value & opt int 64 & info [ "pages" ] ~doc:"Disk pages to allocate.")
  in
  let ops =
    Arg.(value & opt int 500 & info [ "ops" ] ~doc:"Random page reads.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a buffer-pool workload over the instrumented (optionally \
          faulted) disk and print the operation counters, including the \
          fault-plane media tally and a scrub pass.")
    Term.(const stats $ seed $ faults $ pages $ ops)

(* ------------------------------------------------------------------ *)
(* overload                                                            *)
(* ------------------------------------------------------------------ *)

let overload spike deadline_ms no_admission no_deadlines storm seed duration =
  let module OS = Mmdb.Overload_sim in
  let cfg =
    {
      OS.default_config with
      OS.seed;
      OS.spike_mult = spike;
      OS.deadline_budget = deadline_ms /. 1000.0;
      OS.admission = not no_admission;
      OS.enforce_deadlines = not no_deadlines;
      OS.storm;
      OS.duration;
    }
  in
  let o = OS.run cfg in
  Printf.printf "run:        %s, %.1fs at %.0f/s base, %gx spike, %.0f ms \
                 deadlines%s\n"
    o.OS.label cfg.OS.duration cfg.OS.base_rate cfg.OS.spike_mult deadline_ms
    (if storm then ", storm armed" else "");
  Printf.printf "arrivals:   %d\n" o.OS.arrivals;
  Printf.printf "goodput:    %d txns (%.0f tps) durable within deadline\n"
    o.OS.goodput_txns o.OS.goodput_tps;
  Printf.printf "committed:  %d total (%d late past their deadline)\n"
    o.OS.committed o.OS.late;
  Printf.printf "shed:       %d typed rejections\n" o.OS.shed;
  Printf.printf "timed out:  %d typed deadline expiries\n" o.OS.timed_out;
  if o.OS.io_failures > 0 then
    Printf.printf "io failed:  %d\n" o.OS.io_failures;
  Printf.printf "latency:    p50 %.1f ms, p99 %.1f ms\n"
    (o.OS.p50_latency *. 1e3) (o.OS.p99_latency *. 1e3);
  if o.OS.shed_codes <> [] then begin
    Printf.printf "codes:     ";
    List.iter (fun (c, n) -> Printf.printf " %s=%d" c n) o.OS.shed_codes;
    print_newline ()
  end;
  Printf.printf "breaker:    %d trip(s), %d reopen(s), final %s\n"
    o.OS.breaker_trips o.OS.breaker_reopens o.OS.breaker_final;
  Printf.printf "money:      %s\n"
    (if o.OS.money_conserved then "conserved" else "NOT CONSERVED");
  if o.OS.money_conserved then 0 else 1

let overload_cmd =
  let spike =
    Arg.(
      value & opt float 10.0
      & info [ "spike" ] ~doc:"Arrival-rate multiplier during the spike window.")
  in
  let deadline =
    Arg.(
      value & opt float 50.0
      & info [ "deadline" ] ~doc:"Per-transaction deadline in milliseconds.")
  in
  let no_admission =
    Arg.(
      value & flag
      & info [ "no-admission" ]
          ~doc:
            "Disarm admission control (the collapse control: every arrival \
             is admitted and queues behind the log device).")
  in
  let no_deadlines =
    Arg.(
      value & flag
      & info [ "no-deadlines" ]
          ~doc:
            "Disarm in-service deadline enforcement: expired transactions \
             run to commit anyway (clients just observe the lateness), so \
             the backlog snowballs.")
  in
  let storm =
    Arg.(
      value & flag
      & info [ "storm" ]
          ~doc:
            "Arm the $(b,storm) fault spec: a burst of transient log-device \
             faults that trips the circuit breaker.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload PRNG seed.")
  in
  let duration =
    Arg.(
      value & opt float 3.0
      & info [ "duration" ] ~doc:"Simulated seconds of arrivals.")
  in
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Open-loop overload experiment: Poisson arrivals with a rate \
          spike (optionally plus a transient-fault storm) against the \
          transactional service, with admission control, deadlines, \
          circuit breaker and typed load shedding — or without, to watch \
          the unprotected service collapse. Exits 1 if money is not \
          conserved.")
    Term.(
      const overload $ spike $ deadline $ no_admission $ no_deadlines $ storm
      $ seed $ duration)

(* ------------------------------------------------------------------ *)
(* repl                                                                *)
(* ------------------------------------------------------------------ *)

let print_rows rows limit =
  List.iteri
    (fun i row ->
      if i < limit then
        print_endline
          (String.concat " | "
             (List.map
                (function
                  | S.Tuple.VInt v -> string_of_int v
                  | S.Tuple.VStr s -> s)
                row)))
    rows;
  let total = List.length rows in
  if total > limit then Printf.printf "... (%d rows total)\n" total
  else Printf.printf "(%d rows)\n" total

let repl_help () =
  print_endline
    "statements: SELECT/INSERT/DELETE/UPDATE/CREATE TABLE/DROP TABLE\n\
     dot commands:\n\
    \  .tables            list tables\n\
    \  .schema TABLE      show a table's schema\n\
    \  .explain QUERY     show the plan without running\n\
    \  .save PATH         write the database to a file\n\
    \  .load PATH         replace the database from a file\n\
    \  .demo              load the built-in demo tables\n\
    \  .help              this text\n\
    \  .quit              exit"

let repl initial_db =
  let db = ref (match initial_db with Some d -> d | None -> Mmdb.Db.create ()) in
  print_endline
    "mmdb repl - type SQL statements, .help for commands, .quit to exit";
  let continue = ref true in
  while !continue do
    print_string "mmdb> ";
    match In_channel.input_line stdin with
    | None -> continue := false
    | Some line -> (
      let line = String.trim line in
      if line = "" then ()
      else if line = ".quit" || line = ".exit" then continue := false
      else if line = ".help" then repl_help ()
      else if line = ".tables" then
        List.iter print_endline (List.sort compare (Mmdb.Db.table_names !db))
      else if line = ".demo" then begin
        db := demo_db ();
        print_endline "demo tables loaded: emp, dept"
      end
      else if String.length line > 8 && String.sub line 0 8 = ".schema " then begin
        let table = String.trim (String.sub line 8 (String.length line - 8)) in
        match Mmdb.Db.catalog !db |> fun c -> P.Catalog.find c table with
        | rel ->
          Format.printf "%a@." S.Schema.pp (S.Relation.schema rel)
        | exception Not_found -> Printf.printf "no such table: %s\n" table
      end
      else if String.length line > 9 && String.sub line 0 9 = ".explain " then begin
        let q = String.sub line 9 (String.length line - 9) in
        match P.Sql.parse q with
        | Ok expr -> print_string (Mmdb.Db.explain !db expr)
        | Error m -> Printf.printf "parse error: %s\n" m
      end
      else if String.length line > 6 && String.sub line 0 6 = ".save " then begin
        let path = String.trim (String.sub line 6 (String.length line - 6)) in
        try
          Mmdb.Db.save !db path;
          Printf.printf "saved to %s\n" path
        with Sys_error m -> Printf.printf "error: %s\n" m
      end
      else if String.length line > 6 && String.sub line 0 6 = ".load " then begin
        let path = String.trim (String.sub line 6 (String.length line - 6)) in
        try
          db := Mmdb.Db.load path;
          Printf.printf "loaded %s\n" path
        with
        | Sys_error m -> Printf.printf "error: %s\n" m
        | Invalid_argument m -> Printf.printf "error: %s\n" m
      end
      else if line.[0] = '.' then
        Printf.printf "unknown command %s (.help for help)\n" line
      else
        try
          match Mmdb.Db.execute !db line with
          | Mmdb.Db.Rows rows -> print_rows rows 40
          | Mmdb.Db.Affected n -> Printf.printf "ok (%d rows affected)\n" n
        with
        | Invalid_argument m -> Printf.printf "error: %s\n" m
        | Not_found -> print_endline "error: unknown table")
  done;
  0

let repl_cmd =
  let db_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~doc:"Database file to load at startup.")
  in
  let with_demo =
    Arg.(value & flag & info [ "demo" ] ~doc:"Start with the demo tables.")
  in
  let run db_file with_demo =
    let initial =
      match db_file with
      | Some path -> Some (Mmdb.Db.load path)
      | None -> if with_demo then Some (demo_db ()) else None
    in
    repl initial
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL shell over an mmdb database.")
    Term.(const run $ db_file $ with_demo)

let () =
  let doc = "Main-memory DBMS techniques (DeWitt et al., SIGMOD 1984)" in
  let info = Cmd.info "mmdb_cli" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            crossover_cmd; join_cmd; tps_cmd; recover_cmd; plan_cmd; sql_cmd;
            check_cmd; txncheck_cmd; torture_cmd; modelcheck_cmd;
            racecheck_cmd; perflint_cmd; exnlint_cmd; stats_cmd;
            overload_cmd; repl_cmd;
          ]))
